// Tests for the CNF core: literal encoding, formula evaluation, op counting,
// and the DIMACS parser/writer (round trips, tolerance, error reporting).

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "cnf/dimacs.hpp"
#include "cnf/formula.hpp"
#include "util/rng.hpp"

namespace hts::cnf {
namespace {

TEST(Lit, EncodingRoundTrip) {
  const Lit positive(5, false);
  EXPECT_EQ(positive.var(), 5u);
  EXPECT_FALSE(positive.negated());
  EXPECT_EQ(positive.code(), 10u);
  const Lit negative = ~positive;
  EXPECT_EQ(negative.var(), 5u);
  EXPECT_TRUE(negative.negated());
  EXPECT_EQ(negative.code(), 11u);
  EXPECT_EQ(~negative, positive);
}

TEST(Lit, DimacsConversion) {
  EXPECT_EQ(Lit::from_dimacs(3).var(), 2u);
  EXPECT_FALSE(Lit::from_dimacs(3).negated());
  EXPECT_TRUE(Lit::from_dimacs(-1).negated());
  EXPECT_EQ(Lit::from_dimacs(-1).var(), 0u);
  EXPECT_EQ(Lit::from_dimacs(-7).to_dimacs(), -7);
  EXPECT_EQ(Lit::from_dimacs(7).to_dimacs(), 7);
}

TEST(Lit, ValueUnder) {
  const Lit pos(0, false);
  const Lit neg(0, true);
  EXPECT_TRUE(pos.value_under(true));
  EXPECT_FALSE(pos.value_under(false));
  EXPECT_FALSE(neg.value_under(true));
  EXPECT_TRUE(neg.value_under(false));
}

Formula tiny_formula() {
  // (x1 | ~x2) & (x2 | x3) & (~x1 | ~x3)
  Formula f(3);
  f.add_clause({Lit(0, false), Lit(1, true)});
  f.add_clause({Lit(1, false), Lit(2, false)});
  f.add_clause({Lit(0, true), Lit(2, true)});
  return f;
}

TEST(Formula, SatisfiedBy) {
  const Formula f = tiny_formula();
  EXPECT_TRUE(f.satisfied_by({1, 1, 0}));
  EXPECT_FALSE(f.satisfied_by({0, 1, 0}));   // violates clause 1
  EXPECT_FALSE(f.satisfied_by({1, 0, 1}));   // violates clause 3
}

TEST(Formula, CountSatisfiedAndFirstFalsified) {
  const Formula f = tiny_formula();
  EXPECT_EQ(f.count_satisfied({1, 1, 0}), 3u);
  EXPECT_EQ(f.count_satisfied({0, 1, 0}), 2u);
  EXPECT_EQ(f.first_falsified({1, 1, 0}), 3u);
  EXPECT_EQ(f.first_falsified({0, 1, 0}), 0u);
}

TEST(Formula, LiteralAndOpCounts) {
  const Formula f = tiny_formula();
  EXPECT_EQ(f.n_literals(), 6u);
  // Each 2-literal clause: 1 OR; conjunction: 2 ANDs; 3 negated literals.
  EXPECT_EQ(f.op_count_2input(true), 3u + 2u + 3u);
  EXPECT_EQ(f.op_count_2input(false), 3u + 2u);
}

TEST(Formula, OccurrenceCounts) {
  const Formula f = tiny_formula();
  const auto occ = f.occurrences();
  EXPECT_EQ(occ[0].positive, 1u);
  EXPECT_EQ(occ[0].negative, 1u);
  EXPECT_EQ(occ[1].positive, 1u);
  EXPECT_EQ(occ[1].negative, 1u);
  EXPECT_EQ(occ[2].positive, 1u);
  EXPECT_EQ(occ[2].negative, 1u);
}

TEST(Formula, CompactRemovesUnusedVars) {
  Formula f(10);
  f.add_clause({Lit(2, false), Lit(7, true)});
  const auto remap = f.compact();
  EXPECT_EQ(f.n_vars(), 2u);
  EXPECT_EQ(remap[2], 0u);
  EXPECT_EQ(remap[7], 1u);
  EXPECT_EQ(remap[0], kInvalidVar);
  EXPECT_EQ(f.clause(0)[0].var(), 0u);
  EXPECT_EQ(f.clause(0)[1].var(), 1u);
}

TEST(Formula, NewVarGrows) {
  Formula f(1);
  EXPECT_EQ(f.new_var(), 1u);
  EXPECT_EQ(f.n_vars(), 2u);
}

TEST(Dimacs, ParsesBasic) {
  const Formula f = parse_dimacs_string("p cnf 3 2\n1 -2 0\n2 3 0\n");
  EXPECT_EQ(f.n_vars(), 3u);
  ASSERT_EQ(f.n_clauses(), 2u);
  EXPECT_EQ(f.clause(0)[0].to_dimacs(), 1);
  EXPECT_EQ(f.clause(0)[1].to_dimacs(), -2);
}

TEST(Dimacs, SkipsCommentsAndBlankLines) {
  const Formula f = parse_dimacs_string(
      "c a comment\nc another\n\np cnf 2 1\nc inline comment line\n1 2 0\n");
  EXPECT_EQ(f.n_vars(), 2u);
  EXPECT_EQ(f.n_clauses(), 1u);
}

TEST(Dimacs, HandlesClausesAcrossLines) {
  const Formula f = parse_dimacs_string("p cnf 3 1\n1\n-2\n3 0\n");
  ASSERT_EQ(f.n_clauses(), 1u);
  EXPECT_EQ(f.clause(0).size(), 3u);
}

TEST(Dimacs, ToleratesClauseCountMismatch) {
  const Formula f = parse_dimacs_string("p cnf 2 5\n1 0\n2 0\n");
  EXPECT_EQ(f.n_clauses(), 2u);
}

TEST(Dimacs, ErrorOnMissingHeader) {
  EXPECT_THROW((void)parse_dimacs_string("1 2 0\n"), DimacsError);
}

TEST(Dimacs, ErrorOnLiteralBeyondHeader) {
  EXPECT_THROW((void)parse_dimacs_string("p cnf 2 1\n3 0\n"), DimacsError);
}

TEST(Dimacs, ErrorOnUnterminatedClause) {
  EXPECT_THROW((void)parse_dimacs_string("p cnf 2 1\n1 2\n"), DimacsError);
}

TEST(Dimacs, ErrorOnJunkToken) {
  EXPECT_THROW((void)parse_dimacs_string("p cnf 2 1\n1 x 0\n"), DimacsError);
}

TEST(Dimacs, ErrorReportsLineNumber) {
  try {
    (void)parse_dimacs_string("p cnf 2 2\n1 0\nbogus 0\n");
    FAIL() << "expected DimacsError";
  } catch (const DimacsError& e) {
    EXPECT_GE(e.line(), 3u);
  }
}

TEST(Dimacs, ParsesCrlfLineEndings) {
  const Formula f = parse_dimacs_string(
      "c dos file\r\np cnf 3 2\r\n1 -2 0\r\n2 3 0\r\n");
  EXPECT_EQ(f.n_vars(), 3u);
  ASSERT_EQ(f.n_clauses(), 2u);
  EXPECT_EQ(f.clause(0)[0].to_dimacs(), 1);
  EXPECT_EQ(f.clause(1)[1].to_dimacs(), 3);
}

TEST(Dimacs, CrlfCommentAfterClauseLine) {
  // The 'c' of a comment must still be recognized at line start when the
  // previous line ended in \r\n.
  const Formula f = parse_dimacs_string(
      "p cnf 2 1\r\nc comment between\r\n1 2 0\r\n");
  EXPECT_EQ(f.n_clauses(), 1u);
}

TEST(Dimacs, BlankAndWhitespaceOnlyLines) {
  const Formula f = parse_dimacs_string(
      "p cnf 2 2\n\n   \n\t\n1 0\n\n2 0\n\n\n");
  EXPECT_EQ(f.n_clauses(), 2u);
}

TEST(Dimacs, SatlibPercentZeroFooter) {
  // SATLIB uf/uuf instances end with "%\n0\n" (sometimes plus blank lines);
  // the footer must not become a clause or a parse error.
  const Formula f = parse_dimacs_string("p cnf 3 2\n1 -2 0\n2 3 0\n%\n0\n\n");
  EXPECT_EQ(f.n_vars(), 3u);
  EXPECT_EQ(f.n_clauses(), 2u);
}

TEST(Dimacs, SatlibFooterWithCrlf) {
  const Formula f = parse_dimacs_string("p cnf 2 1\r\n1 2 0\r\n%\r\n0\r\n");
  EXPECT_EQ(f.n_clauses(), 1u);
}

TEST(Dimacs, PercentFooterAloneOk) {
  const Formula f = parse_dimacs_string("p cnf 2 1\n1 2 0\n%\n");
  EXPECT_EQ(f.n_clauses(), 1u);
}

TEST(Dimacs, ErrorOnUnterminatedClauseBeforeFooter) {
  EXPECT_THROW((void)parse_dimacs_string("p cnf 2 1\n1 2\n%\n0\n"), DimacsError);
}

TEST(Dimacs, ErrorOnFooterBeforeDeclaredClauses) {
  // A '%' line before all declared clauses arrived is truncation, not a
  // SATLIB footer.
  EXPECT_THROW((void)parse_dimacs_string("p cnf 4 2\n1 0\n%\n2 0\n"),
               DimacsError);
}

TEST(Dimacs, ErrorOnMidLinePercent) {
  // Only a '%' starting a line is a footer; one inside a clause line is
  // corruption and must not silently truncate the formula.
  EXPECT_THROW((void)parse_dimacs_string("p cnf 4 2\n1 2 0 % oops\n3 4 0\n"),
               DimacsError);
}

TEST(Dimacs, EmptyClauseListOk) {
  const Formula f = parse_dimacs_string("p cnf 4 0\n");
  EXPECT_EQ(f.n_vars(), 4u);
  EXPECT_EQ(f.n_clauses(), 0u);
}

// --- 'c ind' sampling-set declarations (QuickSampler/UniGen convention) -----

TEST(Dimacs, ParsesIndSamplingSet) {
  const Formula f = parse_dimacs_string(
      "c ind 1 3 5 0\np cnf 6 1\n1 2 3 4 5 6 0\n");
  ASSERT_TRUE(f.has_sampling_set());
  const std::vector<Var> expect = {0, 2, 4};  // 0-based
  EXPECT_EQ(f.sampling_set(), expect);
}

TEST(Dimacs, IndAccumulatesAcrossLinesAndPositions) {
  // Multiple 'c ind' lines (before the header, between clauses) accumulate;
  // duplicates collapse; the set comes out sorted.
  const Formula f = parse_dimacs_string(
      "c ind 4 2 0\np cnf 5 2\n1 2 0\nc ind 2 5 0\n3 4 0\n");
  ASSERT_TRUE(f.has_sampling_set());
  const std::vector<Var> expect = {1, 3, 4};
  EXPECT_EQ(f.sampling_set(), expect);
}

TEST(Dimacs, IndTrailingZeroOptional) {
  const Formula f = parse_dimacs_string("c ind 1 2\np cnf 3 1\n1 2 3 0\n");
  const std::vector<Var> expect = {0, 1};
  EXPECT_EQ(f.sampling_set(), expect);
}

TEST(Dimacs, IndSurvivesSatlibFooter) {
  const Formula f =
      parse_dimacs_string("c ind 2 0\np cnf 3 1\n1 2 3 0\n%\n0\n");
  ASSERT_TRUE(f.has_sampling_set());
  EXPECT_EQ(f.sampling_set(), std::vector<Var>{1});
}

TEST(Dimacs, ProseCommentStartingWithIndLikeWordIsNotADirective) {
  // Only a first token exactly "ind" declares a set; prose passes through.
  const Formula f = parse_dimacs_string(
      "c independent study notes\nc indeed\nc in d 1 2\np cnf 2 1\n1 2 0\n");
  EXPECT_FALSE(f.has_sampling_set());
}

TEST(Dimacs, ErrorOnMalformedIndEntry) {
  EXPECT_THROW((void)parse_dimacs_string("c ind 1 x 0\np cnf 2 1\n1 2 0\n"),
               DimacsError);
  EXPECT_THROW((void)parse_dimacs_string("c ind -3 0\np cnf 3 1\n1 2 3 0\n"),
               DimacsError);
}

TEST(Dimacs, ErrorOnIndVariableBeyondHeader) {
  EXPECT_THROW((void)parse_dimacs_string("c ind 7 0\np cnf 3 1\n1 2 3 0\n"),
               DimacsError);
}

TEST(Dimacs, IndWriteParseRoundTrip) {
  Formula original(30);
  original.add_clause({Lit(0, false), Lit(29, true)});
  std::vector<Var> set;
  for (Var v = 0; v < 30; v += 2) set.push_back(v);  // 15 vars: spans 2 lines
  original.set_sampling_set(set);
  const Formula parsed = parse_dimacs_string(to_dimacs_string(original));
  ASSERT_TRUE(parsed.has_sampling_set());
  EXPECT_EQ(parsed.sampling_set(), original.sampling_set());
}

TEST(Formula, SamplingSetValidatesSortsAndDedups) {
  Formula f(5);
  f.set_sampling_set({4, 1, 4, 2});
  const std::vector<Var> expect = {1, 2, 4};
  EXPECT_EQ(f.sampling_set(), expect);
  EXPECT_THROW(f.set_sampling_set({5}), std::invalid_argument);
  f.set_sampling_set({});
  EXPECT_FALSE(f.has_sampling_set());
}

TEST(Formula, CompactRemapsSamplingSet) {
  // Variables 0 and 3 are unused; the set {0, 1, 3, 4} must shrink to the
  // surviving members under their new numbering.
  Formula f(5);
  f.add_clause({Lit(1, false), Lit(2, true)});
  f.add_clause({Lit(4, false)});
  f.set_sampling_set({0, 1, 3, 4});
  (void)f.compact();
  EXPECT_EQ(f.n_vars(), 3u);
  const std::vector<Var> expect = {0, 2};  // old 1 -> 0, old 4 -> 2
  EXPECT_EQ(f.sampling_set(), expect);
}

TEST(Dimacs, WriteParseRoundTrip) {
  util::Rng rng(99);
  Formula original(12);
  for (int c = 0; c < 30; ++c) {
    Clause clause;
    const std::size_t width = 1 + rng.next_below(4);
    for (std::size_t i = 0; i < width; ++i) {
      clause.push_back(Lit(static_cast<Var>(rng.next_below(12)), rng.next_bool()));
    }
    original.add_clause(clause);
  }
  const Formula parsed = parse_dimacs_string(to_dimacs_string(original, "roundtrip"));
  ASSERT_EQ(parsed.n_vars(), original.n_vars());
  ASSERT_EQ(parsed.n_clauses(), original.n_clauses());
  for (std::size_t c = 0; c < original.n_clauses(); ++c) {
    EXPECT_EQ(parsed.clause(c), original.clause(c)) << "clause " << c;
  }
}

TEST(Dimacs, CommentBlockWritten) {
  Formula f(1);
  f.add_clause({Lit(0, false)});
  const std::string text = to_dimacs_string(f, "line one\nline two");
  EXPECT_NE(text.find("c line one"), std::string::npos);
  EXPECT_NE(text.find("c line two"), std::string::npos);
}

TEST(Dimacs, FileNotFoundThrows) {
  EXPECT_THROW((void)parse_dimacs_file("/nonexistent/path.cnf"), std::runtime_error);
}

}  // namespace
}  // namespace hts::cnf
