// Unit tests for the tape optimizer's common-subexpression-elimination
// pass: duplicate (op, a, b) triples collapse — including commutative
// operand order — OptStats counts them, chains of duplicates cascade, and
// optimized-vs-raw forward activations stay bit-identical (the families-wide
// parity contract lives in engine_parity_test; here we pin the CSE-specific
// cases and that real Tseitin-shaped circuits give the pass work to do).

#include <gtest/gtest.h>

#include "benchgen/families.hpp"
#include "circuit/circuit.hpp"
#include "prob/compiled.hpp"
#include "prob/engine.hpp"
#include "transform/transform.hpp"
#include "util/rng.hpp"

namespace hts::prob {
namespace {

using circuit::Circuit;
using circuit::GateType;
using circuit::SignalId;

/// Raw-vs-optimized forward parity with the exact sigmoid must be bitwise.
void expect_bit_identical_outputs(const Circuit& circuit) {
  const CompiledCircuit raw(circuit, CompiledCircuit::Options{false, false});
  const CompiledCircuit opt(circuit);
  Engine::Config config;
  config.batch = 128;
  config.policy = tensor::Policy::kSerial;
  config.fast_sigmoid = false;
  Engine eng_raw(raw, config);
  Engine eng_opt(opt, config);
  util::Rng rng_a(7);
  util::Rng rng_b(7);
  eng_raw.randomize(rng_a);
  eng_opt.randomize(rng_b);
  eng_raw.forward_only();
  eng_opt.forward_only();
  ASSERT_EQ(raw.outputs().size(), opt.outputs().size());
  for (std::size_t k = 0; k < raw.outputs().size(); ++k) {
    for (std::size_t r = 0; r < config.batch; ++r) {
      ASSERT_EQ(eng_raw.activation(raw.outputs()[k].slot, r),
                eng_opt.activation(opt.outputs()[k].slot, r))
          << "output " << k << " row " << r;
    }
  }
}

TEST(CseTest, IdenticalTriplesCollapse) {
  Circuit circuit;
  const SignalId a = circuit.add_input("a");
  const SignalId b = circuit.add_input("b");
  const SignalId x = circuit.add_gate(GateType::kAnd, {a, b});
  const SignalId y = circuit.add_gate(GateType::kAnd, {a, b});
  const SignalId out = circuit.add_gate(GateType::kXor, {x, y});
  circuit.add_output(out, false);  // x == y, so XOR must learn toward 0

  const CompiledCircuit opt(circuit);
  EXPECT_GE(opt.opt_stats().cse_eliminated, 1u);
  const CompiledCircuit raw(circuit, CompiledCircuit::Options{false, false});
  EXPECT_LT(opt.n_ops(), raw.n_ops());
  expect_bit_identical_outputs(circuit);
}

TEST(CseTest, CommutedOperandsCollapse) {
  for (const GateType type : {GateType::kAnd, GateType::kOr, GateType::kXor}) {
    Circuit circuit;
    const SignalId a = circuit.add_input("a");
    const SignalId b = circuit.add_input("b");
    const SignalId x = circuit.add_gate(type, {a, b});
    const SignalId y = circuit.add_gate(type, {b, a});  // swapped operands
    const SignalId out = circuit.add_gate(GateType::kAnd, {x, y});
    circuit.add_output(out, true);

    const CompiledCircuit opt(circuit);
    EXPECT_GE(opt.opt_stats().cse_eliminated, 1u)
        << circuit::gate_type_name(type);
    expect_bit_identical_outputs(circuit);
  }
}

TEST(CseTest, DuplicateChainsCascade) {
  // Two identical ANDs feed two NOTs: once the ANDs merge, the NOTs become
  // identical too, and one topological walk catches the cascade.
  Circuit circuit;
  const SignalId a = circuit.add_input("a");
  const SignalId b = circuit.add_input("b");
  const SignalId x = circuit.add_gate(GateType::kAnd, {a, b});
  const SignalId y = circuit.add_gate(GateType::kAnd, {b, a});
  const SignalId nx = circuit.add_gate(GateType::kNot, {x});
  const SignalId ny = circuit.add_gate(GateType::kNot, {y});
  const SignalId out = circuit.add_gate(GateType::kOr, {nx, ny});
  circuit.add_output(out, true);

  const CompiledCircuit opt(circuit);
  EXPECT_GE(opt.opt_stats().cse_eliminated, 2u);
  expect_bit_identical_outputs(circuit);
}

TEST(CseTest, DistinctTriplesSurvive) {
  Circuit circuit;
  const SignalId a = circuit.add_input("a");
  const SignalId b = circuit.add_input("b");
  const SignalId c = circuit.add_input("c");
  const SignalId x = circuit.add_gate(GateType::kAnd, {a, b});
  const SignalId y = circuit.add_gate(GateType::kAnd, {a, c});
  const SignalId z = circuit.add_gate(GateType::kOr, {a, b});
  const SignalId out =
      circuit.add_gate(GateType::kAnd, {x, y, z});
  circuit.add_output(out, true);

  const CompiledCircuit opt(circuit);
  EXPECT_EQ(opt.opt_stats().cse_eliminated, 0u);
  expect_bit_identical_outputs(circuit);
}

TEST(CseTest, TseitinHeavyFamiliesGiveCseWork) {
  // The wide families' ground-truth circuits duplicate structure (shared
  // module logic, repeated literal pairs), so the pass must remove ops.
  for (const char* name : {"s15850a_3_2", "Prod-8"}) {
    const benchgen::Instance instance = benchgen::make_instance(name);
    const CompiledCircuit opt(instance.circuit);
    const OptStats& stats = opt.opt_stats();
    EXPECT_GT(stats.cse_eliminated, 0u) << name;
    // Every removed op is attributed to exactly one pass counter.
    EXPECT_EQ(stats.ops_before - stats.ops_after,
              stats.copies_propagated + stats.consts_folded +
                  stats.cse_eliminated + stats.nots_fused + stats.ops_dead)
        << name;
  }
}

TEST(CseTest, TransformedTseitinCnfCollapsesDuplicateLogic) {
  // The paper's pipeline — Tseitin CNF recovered into a multi-level circuit
  // (Algorithm 1) — reintroduces duplicated gate structure that the plain
  // compile keeps: CSE must collapse some of it, bit-identically.
  for (const char* name : {"s15850a_3_2", "Prod-8"}) {
    const benchgen::Instance instance = benchgen::make_instance(name);
    const transform::Result transformed =
        transform::transform_cnf(instance.formula, {});
    ASSERT_FALSE(transformed.proven_unsat) << name;
    const CompiledCircuit opt(transformed.circuit);
    EXPECT_GT(opt.opt_stats().cse_eliminated, 0u) << name;
    expect_bit_identical_outputs(transformed.circuit);
  }
}

}  // namespace
}  // namespace hts::prob
