// A/B parity suite for the vectorized tape engine: on every benchgen
// circuit family, the optimized tape (copy propagation, constant folding,
// CSE, fused NOTs, DCE, slot renumbering) running on the SIMD kernels must
// reproduce the unoptimized tape's activations
//   - bit for bit with the exact (std::exp) sigmoid embed, and
//   - within 1e-5 with the fast polynomial sigmoid.
// This is the contract that lets every sampler default to the optimized
// fast path while benches A/B against the pre-optimization engine.
//
// The schedulers get a stronger treatment: every policy executes the
// compiled plan through the opcode-run-batched kernels in the same order
// (forward in plan order, backward in reverse plan order), so the *full* GD
// trajectory — activations, loss, and V after descent — must be bitwise
// identical across serial, tile-parallel, and level-parallel (including the
// stage-major dispatch forced by Config::force_level_stages), on raw and
// optimized tapes.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "benchgen/families.hpp"
#include "prob/compiled.hpp"
#include "prob/engine.hpp"
#include "util/rng.hpp"

namespace hts::prob {
namespace {

constexpr std::size_t kBatch = 256;
constexpr std::uint64_t kSeed = 4242;

class EngineParity : public ::testing::TestWithParam<const char*> {
 protected:
  static Engine make_engine(const CompiledCircuit& compiled, bool fast_sigmoid,
                            tensor::Policy policy = tensor::Policy::kSerial,
                            bool force_level_stages = false) {
    Engine::Config config;
    config.batch = kBatch;
    config.policy = policy;
    config.fast_sigmoid = fast_sigmoid;
    config.compute_loss = true;
    config.force_level_stages = force_level_stages;
    return Engine(compiled, config);
  }
};

TEST_P(EngineParity, OptimizedExactSigmoidForwardIsBitIdentical) {
  const benchgen::Instance instance = benchgen::make_instance(GetParam());
  const CompiledCircuit raw(instance.circuit,
                            CompiledCircuit::Options{false, false});
  const CompiledCircuit opt(instance.circuit);
  // The optimizer must be doing real work on every family.
  EXPECT_LT(opt.n_ops(), raw.n_ops()) << GetParam();
  EXPECT_LE(opt.n_slots(), raw.n_slots()) << GetParam();

  Engine eng_raw = make_engine(raw, /*fast_sigmoid=*/false);
  Engine eng_opt = make_engine(opt, /*fast_sigmoid=*/false);
  util::Rng rng_a(kSeed);
  util::Rng rng_b(kSeed);
  eng_raw.randomize(rng_a);
  eng_opt.randomize(rng_b);
  eng_raw.forward_only();
  eng_opt.forward_only();

  ASSERT_EQ(raw.outputs().size(), opt.outputs().size());
  for (std::size_t k = 0; k < raw.outputs().size(); ++k) {
    for (std::size_t r = 0; r < kBatch; ++r) {
      const float y_raw = eng_raw.activation(raw.outputs()[k].slot, r);
      const float y_opt = eng_opt.activation(opt.outputs()[k].slot, r);
      ASSERT_EQ(y_raw, y_opt) << GetParam() << " output " << k << " row " << r;
    }
  }
  EXPECT_EQ(eng_raw.last_loss(), eng_opt.last_loss()) << GetParam();
}

TEST_P(EngineParity, OptimizedFastSigmoidForwardWithin1e5) {
  const benchgen::Instance instance = benchgen::make_instance(GetParam());
  const CompiledCircuit raw(instance.circuit,
                            CompiledCircuit::Options{false, false});
  const CompiledCircuit opt(instance.circuit);

  Engine eng_raw = make_engine(raw, /*fast_sigmoid=*/false);
  Engine eng_opt = make_engine(opt, /*fast_sigmoid=*/true);
  util::Rng rng_a(kSeed);
  util::Rng rng_b(kSeed);
  eng_raw.randomize(rng_a);
  eng_opt.randomize(rng_b);
  eng_raw.forward_only();
  eng_opt.forward_only();

  for (std::size_t k = 0; k < raw.outputs().size(); ++k) {
    for (std::size_t r = 0; r < kBatch; ++r) {
      const float y_raw = eng_raw.activation(raw.outputs()[k].slot, r);
      const float y_opt = eng_opt.activation(opt.outputs()[k].slot, r);
      ASSERT_NEAR(y_raw, y_opt, 1e-5f)
          << GetParam() << " output " << k << " row " << r;
    }
  }
}

TEST_P(EngineParity, OptimizedGradientDescentTracksRaw) {
  // Gradient accumulation order can shift where copies were propagated, so
  // V agreement after descent is near-exact rather than bitwise.
  const benchgen::Instance instance = benchgen::make_instance(GetParam());
  const CompiledCircuit raw(instance.circuit,
                            CompiledCircuit::Options{false, false});
  const CompiledCircuit opt(instance.circuit);

  Engine eng_raw = make_engine(raw, /*fast_sigmoid=*/false);
  Engine eng_opt = make_engine(opt, /*fast_sigmoid=*/false);
  util::Rng rng_a(kSeed);
  util::Rng rng_b(kSeed);
  eng_raw.randomize(rng_a);
  eng_opt.randomize(rng_b);
  for (int iter = 0; iter < 3; ++iter) {
    eng_raw.run_iteration();
    eng_opt.run_iteration();
  }
  const std::size_t n_inputs = eng_raw.n_inputs();
  ASSERT_EQ(n_inputs, eng_opt.n_inputs());
  for (std::size_t i = 0; i < n_inputs; ++i) {
    for (std::size_t r = 0; r < kBatch; ++r) {
      ASSERT_NEAR(eng_raw.v_value(i, r), eng_opt.v_value(i, r), 1e-4f)
          << GetParam() << " input " << i << " row " << r;
    }
  }
}

TEST_P(EngineParity, LevelParallelForwardIsBitIdentical) {
  // Serial per-tile vs level-parallel (both fallback and forced stage-major
  // dispatch), raw and optimized tapes, exact sigmoid: every output
  // activation and the loss must agree bit for bit.
  const benchgen::Instance instance = benchgen::make_instance(GetParam());
  for (const bool optimize : {false, true}) {
    const CompiledCircuit compiled(instance.circuit,
                                   CompiledCircuit::Options{false, optimize});
    Engine serial = make_engine(compiled, /*fast_sigmoid=*/false);
    Engine level = make_engine(compiled, /*fast_sigmoid=*/false,
                               tensor::Policy::kLevelParallel);
    Engine staged = make_engine(compiled, /*fast_sigmoid=*/false,
                                tensor::Policy::kLevelParallel,
                                /*force_level_stages=*/true);
    util::Rng rng_a(kSeed);
    util::Rng rng_b(kSeed);
    util::Rng rng_c(kSeed);
    serial.randomize(rng_a);
    level.randomize(rng_b);
    staged.randomize(rng_c);
    serial.forward_only();
    level.forward_only();
    staged.forward_only();
    for (std::size_t k = 0; k < compiled.outputs().size(); ++k) {
      const std::uint32_t slot = compiled.outputs()[k].slot;
      for (std::size_t r = 0; r < kBatch; ++r) {
        ASSERT_EQ(serial.activation(slot, r), level.activation(slot, r))
            << GetParam() << (optimize ? "/opt" : "/raw") << " output " << k
            << " row " << r;
        ASSERT_EQ(serial.activation(slot, r), staged.activation(slot, r))
            << GetParam() << (optimize ? "/opt" : "/raw") << " output " << k
            << " row " << r;
      }
    }
    EXPECT_EQ(serial.last_loss(), level.last_loss()) << GetParam();
    EXPECT_EQ(serial.last_loss(), staged.last_loss()) << GetParam();
  }
}

TEST_P(EngineParity, GdTrajectoryIsBitIdenticalAcrossAllPolicies) {
  // Since the opcode-batched dispatch every policy walks the plan in the
  // same order — forward in plan order, backward in reverse plan order, with
  // level-parallel chunk boundaries fixed at plan time and aligned to
  // operand-disjoint groups — so the *entire* GD trajectory (not just
  // forward activations) is bitwise equal across serial, tile-parallel, and
  // level-parallel (both the tile-major fallback and the forced stage-major
  // dispatch), on raw and optimized tapes.
  const benchgen::Instance instance = benchgen::make_instance(GetParam());
  for (const bool optimize : {false, true}) {
    const CompiledCircuit compiled(instance.circuit,
                                   CompiledCircuit::Options{false, optimize});
    Engine serial = make_engine(compiled, /*fast_sigmoid=*/false);
    Engine tiles = make_engine(compiled, /*fast_sigmoid=*/false,
                               tensor::Policy::kDataParallel);
    Engine level = make_engine(compiled, /*fast_sigmoid=*/false,
                               tensor::Policy::kLevelParallel);
    Engine staged = make_engine(compiled, /*fast_sigmoid=*/false,
                                tensor::Policy::kLevelParallel,
                                /*force_level_stages=*/true);
    Engine* engines[] = {&serial, &tiles, &level, &staged};
    for (Engine* engine : engines) {
      util::Rng rng(kSeed);
      engine->randomize(rng);
    }
    for (int iter = 0; iter < 3; ++iter) {
      for (Engine* engine : engines) engine->run_iteration();
    }
    const std::size_t n_inputs = serial.n_inputs();
    for (std::size_t i = 0; i < n_inputs; ++i) {
      for (std::size_t r = 0; r < kBatch; ++r) {
        const float v = serial.v_value(i, r);
        ASSERT_EQ(v, tiles.v_value(i, r))
            << GetParam() << (optimize ? "/opt" : "/raw") << " tiles input "
            << i << " row " << r;
        ASSERT_EQ(v, level.v_value(i, r))
            << GetParam() << (optimize ? "/opt" : "/raw") << " level input "
            << i << " row " << r;
        ASSERT_EQ(v, staged.v_value(i, r))
            << GetParam() << (optimize ? "/opt" : "/raw") << " staged input "
            << i << " row " << r;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, EngineParity,
                         ::testing::Values("or-50-10-7-UC-10", "75-10-1-q",
                                           "s15850a_3_2", "Prod-8"),
                         [](const ::testing::TestParamInfo<const char*>& info) {
                           std::string name = info.param;
                           for (char& ch : name) {
                             if (ch == '-') ch = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace hts::prob
