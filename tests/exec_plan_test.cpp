// Invariants of the levelized execution plan (prob::ExecPlan), on raw and
// optimized tapes of every benchgen family:
//   - the plan is a permutation of the tape (same op multiset),
//   - level ranges partition the plan and operands always come from strictly
//     lower levels (the independence property kLevelParallel relies on),
//   - group ranges partition each level and operand slots never cross group
//     boundaries within a level (the race-freedom property backward
//     chunking relies on),
//   - each slot is written exactly once (the tape is SSA).

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "benchgen/families.hpp"
#include "prob/compiled.hpp"

namespace hts::prob {
namespace {

class ExecPlanInvariants : public ::testing::TestWithParam<const char*> {};

void check_plan(const CompiledCircuit& compiled, const std::string& label) {
  const ExecPlan& plan = compiled.plan();
  const auto& tape = compiled.tape();
  ASSERT_EQ(plan.n_ops(), tape.size()) << label;
  ASSERT_EQ(plan.op.size(), plan.dst.size()) << label;
  ASSERT_EQ(plan.op.size(), plan.a.size()) << label;
  ASSERT_EQ(plan.op.size(), plan.b.size()) << label;

  // Same multiset of ops (unary plan entries mirror `a` into `b`).
  using Key = std::tuple<OpCode, std::uint32_t, std::uint32_t, std::uint32_t>;
  std::vector<Key> from_tape;
  std::vector<Key> from_plan;
  for (const TapeOp& op : tape) {
    from_tape.emplace_back(op.op, op.dst, op.a,
                           op_is_binary(op.op) ? op.b : op.a);
  }
  for (std::size_t i = 0; i < plan.n_ops(); ++i) {
    from_plan.emplace_back(plan.op[i], plan.dst[i], plan.a[i], plan.b[i]);
  }
  std::sort(from_tape.begin(), from_tape.end());
  std::sort(from_plan.begin(), from_plan.end());
  EXPECT_EQ(from_tape, from_plan) << label;

  // Level ranges partition [0, n_ops).
  ASSERT_FALSE(plan.level_begin.empty()) << label;
  EXPECT_EQ(plan.level_begin.front(), 0u) << label;
  EXPECT_EQ(plan.level_begin.back(), plan.n_ops()) << label;
  for (std::size_t l = 0; l < plan.n_levels(); ++l) {
    EXPECT_LT(plan.level_begin[l], plan.level_begin[l + 1]) << label;
  }

  // Operands come from strictly lower levels; dsts are written once.
  std::vector<int> def_level(compiled.n_slots(), -1);
  for (std::size_t l = 0; l < plan.n_levels(); ++l) {
    for (std::uint32_t i = plan.level_begin[l]; i < plan.level_begin[l + 1];
         ++i) {
      EXPECT_LT(def_level[plan.a[i]], static_cast<int>(l)) << label;
      EXPECT_LT(def_level[plan.b[i]], static_cast<int>(l)) << label;
      EXPECT_EQ(def_level[plan.dst[i]], -1)
          << label << " slot " << plan.dst[i] << " written twice";
      def_level[plan.dst[i]] = static_cast<int>(l);
    }
  }

  // Groups partition each level and never share operand slots.
  ASSERT_EQ(plan.level_group.size(), plan.n_levels() + 1) << label;
  EXPECT_EQ(plan.group_begin.back(), plan.n_ops()) << label;
  for (std::size_t l = 0; l < plan.n_levels(); ++l) {
    EXPECT_EQ(plan.group_begin[plan.level_group[l]], plan.level_begin[l])
        << label;
    std::map<std::uint32_t, std::uint32_t> slot_group;
    for (std::uint32_t g = plan.level_group[l]; g < plan.level_group[l + 1];
         ++g) {
      ASSERT_LT(static_cast<std::size_t>(g) + 1, plan.group_begin.size())
          << label;
      EXPECT_LT(plan.group_begin[g], plan.group_begin[g + 1]) << label;
      for (std::uint32_t i = plan.group_begin[g]; i < plan.group_begin[g + 1];
           ++i) {
        for (const std::uint32_t slot : {plan.a[i], plan.b[i]}) {
          const auto [it, fresh] = slot_group.try_emplace(slot, g);
          EXPECT_TRUE(fresh || it->second == g)
              << label << " operand slot " << slot
              << " appears in groups " << it->second << " and " << g
              << " of level " << l;
        }
      }
    }
    EXPECT_EQ(plan.group_begin[plan.level_group[l + 1]],
              plan.level_begin[l + 1])
        << label;
  }

  // Opcode runs partition the plan, are opcode-uniform, and never cross a
  // level boundary (the engine dispatches one kernel per run).
  ASSERT_FALSE(plan.run_begin.empty()) << label;
  EXPECT_EQ(plan.run_begin.front(), 0u) << label;
  EXPECT_EQ(plan.run_begin.back(), plan.n_ops()) << label;
  for (std::size_t k = 0; k + 1 < plan.run_begin.size(); ++k) {
    const std::uint32_t begin = plan.run_begin[k];
    const std::uint32_t end = plan.run_begin[k + 1];
    ASSERT_LT(begin, end) << label << " run " << k;
    for (std::uint32_t i = begin + 1; i < end; ++i) {
      EXPECT_EQ(plan.op[i], plan.op[begin])
          << label << " run " << k << " mixes opcodes at " << i;
    }
    // A run lies inside one level: no level boundary strictly between.
    for (std::size_t l = 0; l < plan.n_levels(); ++l) {
      const std::uint32_t lb = plan.level_begin[l + 1];
      EXPECT_FALSE(begin < lb && lb < end)
          << label << " run " << k << " crosses level boundary " << lb;
    }
  }
}

TEST_P(ExecPlanInvariants, RawTape) {
  const benchgen::Instance instance = benchgen::make_instance(GetParam());
  const CompiledCircuit raw(instance.circuit,
                            CompiledCircuit::Options{false, false});
  check_plan(raw, std::string(GetParam()) + "/raw");
  // Level stats are filled for raw tapes too.
  EXPECT_EQ(raw.opt_stats().n_levels, raw.plan().n_levels());
  EXPECT_EQ(raw.opt_stats().max_level_width, raw.plan().max_width());
}

TEST_P(ExecPlanInvariants, OptimizedTape) {
  const benchgen::Instance instance = benchgen::make_instance(GetParam());
  const CompiledCircuit opt(instance.circuit);
  check_plan(opt, std::string(GetParam()) + "/opt");
  EXPECT_GT(opt.plan().n_levels(), 0u);
  EXPECT_EQ(opt.opt_stats().n_levels, opt.plan().n_levels());
  EXPECT_EQ(opt.opt_stats().max_level_width, opt.plan().max_width());
  // Run stats mirror the plan, and the (group, opcode) order clusters ops:
  // every family has fewer runs than ops (mean run length > 1).
  EXPECT_EQ(opt.opt_stats().n_opcode_runs, opt.plan().n_runs());
  EXPECT_GT(opt.opt_stats().max_run_length, 1u) << GetParam();
  EXPECT_LT(opt.opt_stats().n_opcode_runs, opt.n_ops()) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, ExecPlanInvariants,
                         ::testing::Values("or-50-10-7-UC-10", "75-10-1-q",
                                           "s15850a_3_2", "Prod-8"),
                         [](const ::testing::TestParamInfo<const char*>& info) {
                           std::string name = info.param;
                           for (char& ch : name) {
                             if (ch == '-') ch = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace hts::prob
