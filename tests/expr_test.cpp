// Tests for the expression engine: construction rules, truth tables,
// Quine-McCluskey minimization, negation, equivalence, and the
// simplification entry point.  Includes randomized property sweeps checking
// that every algebraic transformation preserves semantics.

#include <gtest/gtest.h>

#include "expr/expr.hpp"
#include "expr/qm.hpp"
#include "expr/truth_table.hpp"
#include "util/rng.hpp"

namespace hts::expr {
namespace {

class ExprTest : public ::testing::Test {
 protected:
  Manager mgr;
  ExprId a = mgr.var(0);
  ExprId b = mgr.var(1);
  ExprId c = mgr.var(2);
};

// --- truth tables ------------------------------------------------------------

TEST(TruthTable, ProjectionPatterns) {
  const TruthTable x0 = TruthTable::projection(2, 0);
  const TruthTable x1 = TruthTable::projection(2, 1);
  // rows: 00 01 10 11 (bit j of the row index = var j)
  EXPECT_FALSE(x0.get(0));
  EXPECT_TRUE(x0.get(1));
  EXPECT_FALSE(x0.get(2));
  EXPECT_TRUE(x0.get(3));
  EXPECT_FALSE(x1.get(0));
  EXPECT_FALSE(x1.get(1));
  EXPECT_TRUE(x1.get(2));
  EXPECT_TRUE(x1.get(3));
}

TEST(TruthTable, ProjectionAboveWordBoundary) {
  const TruthTable x7 = TruthTable::projection(8, 7);
  EXPECT_FALSE(x7.get(0));
  EXPECT_TRUE(x7.get(128));
  EXPECT_TRUE(x7.get(255));
  EXPECT_FALSE(x7.get(127));
}

TEST(TruthTable, OperatorsMatchSemantics) {
  const TruthTable x = TruthTable::projection(3, 0);
  const TruthTable y = TruthTable::projection(3, 2);
  const TruthTable conj = x & y;
  const TruthTable disj = x | y;
  const TruthTable exor = x ^ y;
  for (std::uint64_t row = 0; row < 8; ++row) {
    const bool xv = (row & 1) != 0;
    const bool yv = (row & 4) != 0;
    EXPECT_EQ(conj.get(row), xv && yv);
    EXPECT_EQ(disj.get(row), xv || yv);
    EXPECT_EQ(exor.get(row), xv != yv);
  }
}

TEST(TruthTable, ConstantsAndNegation) {
  const TruthTable t = TruthTable::constant(4, true);
  const TruthTable f = TruthTable::constant(4, false);
  EXPECT_TRUE(t.is_constant_true());
  EXPECT_TRUE(f.is_constant_false());
  EXPECT_TRUE((~t).is_constant_false());
  EXPECT_EQ(t.popcount(), 16u);
}

TEST(TruthTable, ZeroVarTables) {
  const TruthTable t = TruthTable::constant(0, true);
  EXPECT_EQ(t.n_rows(), 1u);
  EXPECT_TRUE(t.get(0));
  EXPECT_TRUE((~t).is_constant_false());
}

TEST(TruthTable, MintermsListsOnes) {
  TruthTable tt(2);
  tt.set(1, true);
  tt.set(3, true);
  EXPECT_EQ(tt.minterms(), (std::vector<std::uint64_t>{1, 3}));
}

// --- construction rules -------------------------------------------------------

TEST_F(ExprTest, ConstantsAndVars) {
  EXPECT_EQ(mgr.kind(mgr.const0()), Kind::kConst0);
  EXPECT_EQ(mgr.kind(mgr.const1()), Kind::kConst1);
  EXPECT_EQ(mgr.var(0), a);  // hash-consed
  EXPECT_NE(a, b);
}

TEST_F(ExprTest, DoubleNegationCancels) {
  EXPECT_EQ(mgr.mk_not(mgr.mk_not(a)), a);
  EXPECT_EQ(mgr.mk_not(mgr.const0()), mgr.const1());
}

TEST_F(ExprTest, AndIdentityAndAnnihilator) {
  EXPECT_EQ(mgr.mk_and({a, mgr.const1()}), a);
  EXPECT_EQ(mgr.mk_and({a, mgr.const0()}), mgr.const0());
  EXPECT_EQ(mgr.mk_and({}), mgr.const1());
  EXPECT_EQ(mgr.mk_and({a, a}), a);
  EXPECT_EQ(mgr.mk_and({a, mgr.mk_not(a)}), mgr.const0());
}

TEST_F(ExprTest, OrIdentityAndAnnihilator) {
  EXPECT_EQ(mgr.mk_or({a, mgr.const0()}), a);
  EXPECT_EQ(mgr.mk_or({a, mgr.const1()}), mgr.const1());
  EXPECT_EQ(mgr.mk_or({}), mgr.const0());
  EXPECT_EQ(mgr.mk_or({a, mgr.mk_not(a)}), mgr.const1());
}

TEST_F(ExprTest, FlatteningAndCommutativity) {
  const ExprId left = mgr.mk_and2(a, mgr.mk_and2(b, c));
  const ExprId right = mgr.mk_and2(mgr.mk_and2(c, a), b);
  EXPECT_EQ(left, right);  // same canonical node
}

TEST_F(ExprTest, Absorption) {
  // a | (a & b) == a ; a & (a | b) == a
  EXPECT_EQ(mgr.mk_or2(a, mgr.mk_and2(a, b)), a);
  EXPECT_EQ(mgr.mk_and2(a, mgr.mk_or2(a, b)), a);
}

TEST_F(ExprTest, XorParityNormalization) {
  EXPECT_EQ(mgr.mk_xor({a, a}), mgr.const0());
  EXPECT_EQ(mgr.mk_xor({a, mgr.const0()}), a);
  EXPECT_EQ(mgr.mk_xor({a, mgr.const1()}), mgr.mk_not(a));
  // ~a ^ b == ~(a ^ b)
  EXPECT_EQ(mgr.mk_xor2(mgr.mk_not(a), b), mgr.mk_not(mgr.mk_xor2(a, b)));
  // ~a ^ ~b == a ^ b
  EXPECT_EQ(mgr.mk_xor2(mgr.mk_not(a), mgr.mk_not(b)), mgr.mk_xor2(a, b));
}

TEST_F(ExprTest, MuxConstruction) {
  const ExprId mux = mgr.mk_mux(a, b, c);
  // Semantics: a ? b : c.
  for (int bits = 0; bits < 8; ++bits) {
    const std::vector<std::uint8_t> assignment{
        static_cast<std::uint8_t>(bits & 1), static_cast<std::uint8_t>((bits >> 1) & 1),
        static_cast<std::uint8_t>((bits >> 2) & 1)};
    const bool expected = assignment[0] != 0 ? assignment[1] != 0 : assignment[2] != 0;
    EXPECT_EQ(mgr.eval(mux, assignment), expected) << bits;
  }
}

TEST_F(ExprTest, SupportComputation) {
  const ExprId e = mgr.mk_or2(mgr.mk_and2(a, c), mgr.mk_not(a));
  EXPECT_EQ(mgr.support(e), (std::vector<std::uint32_t>{0, 2}));
  EXPECT_TRUE(mgr.support(mgr.const1()).empty());
}

// --- negate / equivalence ------------------------------------------------------

TEST_F(ExprTest, NegatePushesThroughDeMorgan) {
  const ExprId e = mgr.mk_and2(a, mgr.mk_or2(b, c));
  const ExprId n = mgr.negate(e);
  // ~(a & (b|c)) == ~a | (~b & ~c); check semantically and structurally
  // (negate must not produce a top-level NOT over AND/OR).
  EXPECT_NE(mgr.kind(n), Kind::kNot);
  EXPECT_TRUE(mgr.equivalent(n, mgr.mk_not(e)));
  EXPECT_EQ(mgr.negate(n), e);
}

TEST_F(ExprTest, EquivalentBasics) {
  const ExprId lhs = mgr.mk_or2(a, b);
  const ExprId rhs = mgr.mk_not(mgr.mk_and2(mgr.mk_not(a), mgr.mk_not(b)));
  EXPECT_TRUE(mgr.equivalent(lhs, rhs));
  EXPECT_FALSE(mgr.equivalent(lhs, mgr.mk_and2(a, b)));
}

TEST_F(ExprTest, ComplementaryDetectsMuxPair) {
  // The paper's Eq. 5 check: f = (x107&x4)|(x108&~x4) vs
  // g = (~x107&x4)|(~x108&~x4) must be complements.
  const ExprId x4 = mgr.var(3);
  const ExprId x107 = mgr.var(106);
  const ExprId x108 = mgr.var(107);
  const ExprId f = mgr.mk_or2(mgr.mk_and2(x107, x4),
                              mgr.mk_and2(x108, mgr.mk_not(x4)));
  const ExprId g = mgr.mk_or2(mgr.mk_and2(mgr.mk_not(x107), x4),
                              mgr.mk_and2(mgr.mk_not(x108), mgr.mk_not(x4)));
  EXPECT_TRUE(mgr.complementary(f, g));
  EXPECT_FALSE(mgr.complementary(f, f));
}

TEST_F(ExprTest, EquivalentOnDisjointSupports) {
  EXPECT_FALSE(mgr.equivalent(a, b));
  EXPECT_TRUE(mgr.equivalent(mgr.mk_xor2(a, a), mgr.const0()));
}

// --- QM minimization ------------------------------------------------------------

TEST(Qm, MinimizesMuxCover) {
  // f(s, d1, d0) = s ? d1 : d0 — classic 3-var function with a consensus
  // term; QM must produce exactly two cubes.
  TruthTable tt(3);
  for (std::uint64_t row = 0; row < 8; ++row) {
    const bool s = (row & 1) != 0;
    const bool d1 = (row & 2) != 0;
    const bool d0 = (row & 4) != 0;
    tt.set(row, s ? d1 : d0);
  }
  const auto cover = minimize_sop(tt);
  EXPECT_EQ(cover.size(), 2u);
  for (const std::uint64_t m : tt.minterms()) {
    bool covered = false;
    for (const Cube& cube : cover) covered |= cube.covers(m);
    EXPECT_TRUE(covered) << m;
  }
}

TEST(Qm, ConstantCovers) {
  EXPECT_TRUE(minimize_sop(TruthTable::constant(3, false)).empty());
  const auto cover = minimize_sop(TruthTable::constant(3, true));
  ASSERT_EQ(cover.size(), 1u);
  EXPECT_EQ(cover[0].mask, 0u);
}

TEST(Qm, SingleMinterm) {
  TruthTable tt(4);
  tt.set(5, true);  // x0=1 x1=0 x2=1 x3=0
  const auto cover = minimize_sop(tt);
  ASSERT_EQ(cover.size(), 1u);
  EXPECT_EQ(cover[0].mask, 0xFu);
  EXPECT_EQ(cover[0].value, 5u);
  EXPECT_EQ(cover[0].n_literals(), 4);
}

TEST(Qm, CoverIsExactOnRandomFunctions) {
  util::Rng rng(1234);
  for (int trial = 0; trial < 50; ++trial) {
    const std::uint32_t n = 1 + rng.next_below(6);
    TruthTable tt(static_cast<std::uint32_t>(n));
    for (std::uint64_t row = 0; row < tt.n_rows(); ++row) {
      tt.set(row, rng.next_bool());
    }
    const auto cover = minimize_sop(tt);
    // Rebuild and compare against the original table.
    TruthTable rebuilt(static_cast<std::uint32_t>(n));
    for (std::uint64_t row = 0; row < tt.n_rows(); ++row) {
      bool value = false;
      for (const Cube& cube : cover) value |= cube.covers(row);
      rebuilt.set(row, value);
    }
    EXPECT_EQ(rebuilt, tt) << "trial " << trial << " n=" << n;
  }
}

TEST(Qm, SopCostCountsOps) {
  // (x0 & ~x1) | x2 — cube1: 1 AND + 1 NOT, cube2: 0; OR: 1 -> total 3.
  const std::vector<Cube> cover{Cube{0b011, 0b001}, Cube{0b100, 0b100}};
  EXPECT_EQ(sop_cost(cover, true), 3u);
  EXPECT_EQ(sop_cost(cover, false), 2u);
}

// --- simplify -------------------------------------------------------------------

TEST_F(ExprTest, SimplifyProductOfSumsToMux) {
  // (~a | b) & (a | c) == (a & b) | (~a & c): POS (4 ops incl NOT) vs SOP
  // (5 ops); simplify should pick a form no worse than the input.
  const ExprId pos = mgr.mk_and2(mgr.mk_or2(mgr.mk_not(a), b), mgr.mk_or2(a, c));
  const ExprId simplified = mgr.simplify(pos);
  EXPECT_TRUE(mgr.equivalent(pos, simplified));
  EXPECT_LE(mgr.op_count_2input(simplified), mgr.op_count_2input(pos));
}

TEST_F(ExprTest, SimplifyDetectsConstants) {
  const ExprId tautology = mgr.mk_or2(mgr.mk_and2(a, b), mgr.mk_not(mgr.mk_and2(a, b)));
  EXPECT_EQ(mgr.simplify(tautology), mgr.const1());
  const ExprId contradiction = mgr.mk_and2(mgr.mk_xor2(a, b), mgr.mk_xor2(a, b));
  // xor & xor == xor (dedupe), not constant; make a real contradiction:
  const ExprId contra2 =
      mgr.mk_and2(mgr.mk_xor2(a, b), mgr.mk_not(mgr.mk_xor2(a, b)));
  EXPECT_EQ(mgr.simplify(contra2), mgr.const0());
  (void)contradiction;
}

TEST_F(ExprTest, SimplifyPreservesSemanticsRandomized) {
  util::Rng rng(777);
  for (int trial = 0; trial < 60; ++trial) {
    // Random expression over 4 vars, depth ~4.
    std::vector<ExprId> pool{mgr.var(0), mgr.var(1), mgr.var(2), mgr.var(3)};
    for (int step = 0; step < 10; ++step) {
      const ExprId x = pool[rng.next_below(pool.size())];
      const ExprId y = pool[rng.next_below(pool.size())];
      switch (rng.next_below(4)) {
        case 0:
          pool.push_back(mgr.mk_and2(x, y));
          break;
        case 1:
          pool.push_back(mgr.mk_or2(x, y));
          break;
        case 2:
          pool.push_back(mgr.mk_xor2(x, y));
          break;
        default:
          pool.push_back(mgr.mk_not(x));
          break;
      }
    }
    const ExprId original = pool.back();
    const ExprId simplified = mgr.simplify(original);
    EXPECT_TRUE(mgr.equivalent(original, simplified)) << "trial " << trial;
    EXPECT_LE(mgr.op_count_2input(simplified), mgr.op_count_2input(original));
  }
}

TEST_F(ExprTest, OpCountSharesCommonSubDags) {
  const ExprId shared = mgr.mk_and2(a, b);
  const ExprId e = mgr.mk_or2(shared, mgr.mk_xor2(shared, c));
  // Nodes: AND(1) + XOR(1) + OR(1) = 3; 'shared' counted once.
  EXPECT_EQ(mgr.op_count_2input(e), 3u);
}

TEST_F(ExprTest, ToStringReadable) {
  const ExprId e = mgr.mk_or2(mgr.mk_and2(a, mgr.mk_not(b)), c);
  const std::string text = mgr.to_string(e);
  EXPECT_NE(text.find("x0"), std::string::npos);
  EXPECT_NE(text.find("~x1"), std::string::npos);
  EXPECT_NE(text.find("|"), std::string::npos);
}

TEST_F(ExprTest, EvalAgainstTruthTableRandomized) {
  util::Rng rng(555);
  const ExprId e = mgr.mk_or2(mgr.mk_xor2(a, mgr.mk_and2(b, c)), mgr.mk_not(b));
  const auto support = mgr.support(e);
  const TruthTable tt = mgr.truth_table(e, support);
  for (std::uint64_t row = 0; row < tt.n_rows(); ++row) {
    std::vector<std::uint8_t> assignment(3, 0);
    for (std::size_t j = 0; j < support.size(); ++j) {
      assignment[support[j]] = static_cast<std::uint8_t>((row >> j) & 1);
    }
    EXPECT_EQ(mgr.eval(e, assignment), tt.get(row)) << row;
  }
}

TEST_F(ExprTest, FromSopRebuildsCover) {
  // cover: (x0 & ~x2) | x1 over support {0,1,2}
  const std::vector<Cube> cover{Cube{0b101, 0b001}, Cube{0b010, 0b010}};
  const std::vector<std::uint32_t> support{0, 1, 2};
  const ExprId e = mgr.from_sop(cover, support);
  const ExprId expected =
      mgr.mk_or2(mgr.mk_and2(a, mgr.mk_not(c)), b);
  EXPECT_TRUE(mgr.equivalent(e, expected));
}

}  // namespace
}  // namespace hts::expr
