// Tests for the round-parallel GD subsystem: the sharded unique bank under
// concurrent insert storms, determinism of the n_workers == 1 legacy path,
// exactness of the global unique count when workers merge concurrently, the
// shared max_rounds budget, and the Fig. 3 per-iteration curve under merge.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "baselines/diff_sampler.hpp"
#include "core/gd_loop.hpp"
#include "core/gradient_sampler.hpp"
#include "core/unique_bank.hpp"
#include "cnf/dimacs.hpp"
#include "solver/brute.hpp"
#include "util/rng.hpp"
#include "util/stop_token.hpp"
#include "util/timer.hpp"

namespace hts::sampler {
namespace {

// --- ShardedUniqueBank ------------------------------------------------------

TEST(ShardedUniqueBank, DeduplicatesLikeSerialBank) {
  ShardedUniqueBank bank(130);
  std::vector<std::uint64_t> key(bank.n_words(), 0);
  EXPECT_TRUE(bank.insert(key));
  EXPECT_FALSE(bank.insert(key));
  key[1] = 1;
  EXPECT_TRUE(bank.insert(key));
  EXPECT_EQ(bank.size(), 2u);
}

TEST(ShardedUniqueBank, InsertBitsMatchesPackedInsert) {
  ShardedUniqueBank bank(70);
  std::vector<std::uint8_t> bits(70, 0);
  bits[0] = 1;
  bits[69] = 1;
  EXPECT_TRUE(bank.insert_bits(bits));
  std::vector<std::uint64_t> key(bank.n_words(), 0);
  key[0] = 1ULL;
  key[1] = 1ULL << 5;  // bit 69
  EXPECT_FALSE(bank.insert(key));
}

TEST(ShardedUniqueBank, ShardCountRoundsUpToPowerOfTwo) {
  EXPECT_EQ(ShardedUniqueBank(8, 1).n_shards(), 1u);
  EXPECT_EQ(ShardedUniqueBank(8, 3).n_shards(), 4u);
  EXPECT_EQ(ShardedUniqueBank(8, 64).n_shards(), 64u);
}

// The core concurrency contract: heavily overlapping insert storms from many
// threads must neither lose a distinct key nor double-count a duplicate.
TEST(ShardedUniqueBank, ConcurrentInsertsCountExactly) {
  constexpr std::size_t kThreads = 8;
  constexpr std::uint64_t kDistinct = 2000;
  ShardedUniqueBank bank(64);
  std::atomic<std::size_t> accepted{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // Every thread walks the same distinct key set in a different order, so
      // nearly every insert races with a sibling on the same key.
      util::Rng rng = util::Rng::stream(7, t);
      std::vector<std::uint64_t> order(kDistinct);
      for (std::uint64_t i = 0; i < kDistinct; ++i) order[i] = i;
      rng.shuffle(order);
      std::vector<std::uint64_t> key(1);
      for (const std::uint64_t value : order) {
        key[0] = value;
        if (bank.insert(key)) accepted.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(bank.size(), kDistinct);
  EXPECT_EQ(accepted.load(), kDistinct);
}

// --- round-parallel GD loop -------------------------------------------------

/// (x1|x2) & (x3|x4) & (~x1|~x3) over 7 vars: 5 constrained models
/// times 2^3 free variables = 40 total models.
cnf::Formula small_formula() {
  return cnf::parse_dimacs_string("p cnf 7 3\n1 2 0\n3 4 0\n-1 -3 0\n");
}

RunOptions fast_options(std::size_t min_solutions) {
  RunOptions options;
  options.min_solutions = min_solutions;
  options.budget_ms = 10000.0;
  options.store_limit = 128;
  options.verify_against_cnf = true;
  options.seed = 123;
  return options;
}

GradientConfig small_config(std::size_t n_workers) {
  GradientConfig config;
  config.batch = 256;
  config.n_workers = n_workers;
  return config;
}

TEST(GdParallel, SingleWorkerIsDeterministic) {
  const cnf::Formula formula = small_formula();
  GradientSampler a(small_config(1));
  GradientSampler b(small_config(1));
  const RunResult ra = a.run(formula, fast_options(40));
  const RunResult rb = b.run(formula, fast_options(40));
  EXPECT_EQ(ra.n_unique, rb.n_unique);
  EXPECT_EQ(ra.n_valid, rb.n_valid);
  ASSERT_EQ(ra.solutions.size(), rb.solutions.size());
  for (std::size_t i = 0; i < ra.solutions.size(); ++i) {
    EXPECT_EQ(ra.solutions[i], rb.solutions[i]) << "solution " << i;
  }
  EXPECT_EQ(a.uniques_per_iteration(), b.uniques_per_iteration());
}

TEST(GdParallel, ParallelWorkersFindOnlyValidSolutions) {
  const cnf::Formula formula = small_formula();
  GradientSampler sampler(small_config(3));
  const RunResult result = sampler.run(formula, fast_options(40));
  EXPECT_GT(result.n_unique, 0u);
  EXPECT_EQ(result.n_invalid, 0u);
  EXPECT_GE(result.n_unique, 40u);
  EXPECT_FALSE(result.timed_out);
}

TEST(GdParallel, ParallelUniqueCountNeverExceedsExactModelCount) {
  const cnf::Formula formula = small_formula();
  const std::uint64_t exact = solver::count_models(formula);
  ASSERT_EQ(exact, 40u);
  // Target beyond the model count: the run must saturate at exactly the
  // enumerable total — a merge race that double-counted would overshoot.
  RunOptions options = fast_options(0);
  options.budget_ms = 1500.0;
  GradientSampler sampler(small_config(4));
  const RunResult result = sampler.run(formula, options);
  EXPECT_LE(result.n_unique, exact);
  EXPECT_GT(result.n_unique, 0u);
}

TEST(GdParallel, ParallelSaturatesEnumerableInstance) {
  const cnf::Formula formula = small_formula();
  GradientSampler serial(small_config(1));
  GradientSampler parallel(small_config(4));
  const RunResult rs = serial.run(formula, fast_options(40));
  const RunResult rp = parallel.run(formula, fast_options(40));
  EXPECT_EQ(rs.n_unique, 40u);
  EXPECT_EQ(rp.n_unique, 40u);
}

TEST(GdParallel, HardwareWorkerSelectionRuns) {
  const cnf::Formula formula = small_formula();
  GradientSampler sampler(small_config(0));  // 0 = hardware concurrency
  const RunResult result = sampler.run(formula, fast_options(20));
  EXPECT_GE(result.n_unique, 20u);
  EXPECT_EQ(result.n_invalid, 0u);
}

TEST(GdParallel, MaxRoundsBoundsTotalAcrossWorkers) {
  const cnf::Formula formula = small_formula();
  const baselines::FlatProblem flat = baselines::build_flat_problem(formula);
  GdProblem problem;
  problem.circuit = &flat.circuit;
  problem.var_signal = &flat.var_signal;

  GdLoopConfig config;
  config.batch = 64;
  config.max_rounds = 3;
  config.n_workers = 4;
  RunOptions options;
  options.min_solutions = 0;  // only the round budget may stop the run
  options.budget_ms = 10000.0;

  GdLoopExtras extras;
  (void)run_gd_loop(problem, formula, options, config, &extras);
  EXPECT_LE(extras.rounds, 3u);
  EXPECT_GE(extras.rounds, 1u);
}

TEST(GdParallel, WorkersClampedToMaxRounds) {
  // With fewer rounds than workers, the surplus workers (which could never
  // claim a round) must not allocate engines — visible through the summed
  // memory metric matching a single engine.
  const cnf::Formula formula = small_formula();
  const baselines::FlatProblem flat = baselines::build_flat_problem(formula);
  GdProblem problem;
  problem.circuit = &flat.circuit;
  problem.var_signal = &flat.var_signal;

  GdLoopConfig config;
  config.batch = 64;
  config.max_rounds = 1;
  RunOptions options;
  options.min_solutions = 0;
  options.budget_ms = 10000.0;

  GdLoopExtras serial_extras;
  config.n_workers = 1;
  (void)run_gd_loop(problem, formula, options, config, &serial_extras);

  GdLoopExtras parallel_extras;
  config.n_workers = 8;
  (void)run_gd_loop(problem, formula, options, config, &parallel_extras);

  EXPECT_EQ(parallel_extras.engine_memory_bytes,
            serial_extras.engine_memory_bytes);
  EXPECT_EQ(parallel_extras.rounds, 1u);
}

// --- solved-row restarts ----------------------------------------------------

TEST(GdParallel, SolvedRowRestartsStayDeterministicAndSaturate) {
  const cnf::Formula formula = small_formula();
  for (const bool restart : {false, true}) {
    GradientConfig config = small_config(1);
    config.restart_solved = restart;
    GradientSampler a(config);
    GradientSampler b(config);
    const RunResult ra = a.run(formula, fast_options(40));
    const RunResult rb = b.run(formula, fast_options(40));
    EXPECT_EQ(ra.n_unique, 40u) << "restart_solved = " << restart;
    EXPECT_EQ(ra.n_unique, rb.n_unique) << "restart_solved = " << restart;
    EXPECT_EQ(ra.n_valid, rb.n_valid) << "restart_solved = " << restart;
    EXPECT_EQ(ra.n_invalid, 0u);
  }
}

TEST(GdParallel, RestartExtrasCountReseededRows) {
  // The small formula's random initializations satisfy often, so rounds with
  // mid-round harvests must re-seed a nonzero number of rows — and exactly
  // zero with the knob off.
  const cnf::Formula formula = small_formula();
  const baselines::FlatProblem flat = baselines::build_flat_problem(formula);
  GdProblem problem;
  problem.circuit = &flat.circuit;
  problem.var_signal = &flat.var_signal;

  GdLoopConfig config;
  config.batch = 128;
  config.max_rounds = 2;
  RunOptions options;
  options.min_solutions = 0;
  options.budget_ms = 10000.0;

  GdLoopExtras on_extras;
  config.restart_solved = true;
  (void)run_gd_loop(problem, formula, options, config, &on_extras);
  EXPECT_GT(on_extras.restarted_rows, 0u);

  GdLoopExtras off_extras;
  config.restart_solved = false;
  (void)run_gd_loop(problem, formula, options, config, &off_extras);
  EXPECT_EQ(off_extras.restarted_rows, 0u);
}

TEST(GdParallel, PlateauRestartsReseedStuckRows) {
  // An unsatisfiable pair of unit clauses pins the flat relaxation's optimum
  // at loss 0.5 per row: no row ever solves, descent converges in a few
  // iterations, and every row then stops improving — the stuck-basin shape
  // restart_plateau exists for.  With the knob off nothing is re-seeded.
  const cnf::Formula formula = cnf::parse_dimacs_string("p cnf 2 2\n1 0\n-1 0\n");
  const baselines::FlatProblem flat = baselines::build_flat_problem(formula);
  GdProblem problem;
  problem.circuit = &flat.circuit;
  problem.var_signal = &flat.var_signal;

  GdLoopConfig config;
  config.batch = 128;
  config.iterations = 12;  // enough windows to converge and then stall
  config.max_rounds = 2;
  RunOptions options;
  options.min_solutions = 0;
  options.budget_ms = 10000.0;

  GdLoopExtras on_extras;
  config.restart_plateau = 1;
  (void)run_gd_loop(problem, formula, options, config, &on_extras);
  EXPECT_GT(on_extras.plateau_restarted_rows, 0u);

  GdLoopExtras off_extras;
  config.restart_plateau = 0;
  (void)run_gd_loop(problem, formula, options, config, &off_extras);
  EXPECT_EQ(off_extras.plateau_restarted_rows, 0u);

  // A larger patience re-seeds no more often than an impatient one.
  GdLoopExtras patient_extras;
  config.restart_plateau = 4;
  (void)run_gd_loop(problem, formula, options, config, &patient_extras);
  EXPECT_LE(patient_extras.plateau_restarted_rows,
            on_extras.plateau_restarted_rows);
}

TEST(GdParallel, PlateauRestartsStayDeterministicAndValid) {
  const cnf::Formula formula = small_formula();
  for (const std::size_t workers : {std::size_t{1}, std::size_t{3}}) {
    GradientConfig config = small_config(workers);
    config.restart_plateau = 2;
    GradientSampler a(config);
    GradientSampler b(config);
    const RunResult ra = a.run(formula, fast_options(40));
    EXPECT_EQ(ra.n_invalid, 0u) << workers;
    EXPECT_EQ(ra.n_unique, 40u) << workers;
    if (workers == 1) {
      const RunResult rb = b.run(formula, fast_options(40));
      EXPECT_EQ(ra.n_unique, rb.n_unique);
      EXPECT_EQ(ra.n_valid, rb.n_valid);
    }
    for (const cnf::Assignment& solution : ra.solutions) {
      EXPECT_TRUE(formula.satisfied_by(solution)) << workers;
    }
  }
}

TEST(GdParallel, PerIterationCurveMonotoneUnderMerge) {
  const cnf::Formula formula = small_formula();
  GradientSampler sampler(small_config(3));
  const RunResult result = sampler.run(formula, fast_options(30));
  const std::vector<std::size_t>& curve = sampler.uniques_per_iteration();
  ASSERT_FALSE(curve.empty());
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i], curve[i - 1]) << "iteration " << i;
  }
  // Slots snapshot the shared bank, so the curve can never overshoot the
  // final global unique count.
  EXPECT_LE(curve.back(), result.n_unique);
  EXPECT_GT(curve.back(), 0u);
}

TEST(GdParallel, ProgressTimelineMonotoneAfterInterleave) {
  const cnf::Formula formula = small_formula();
  GradientSampler sampler(small_config(3));
  const RunResult result = sampler.run(formula, fast_options(30));
  for (std::size_t i = 1; i < result.progress.size(); ++i) {
    EXPECT_GE(result.progress[i].elapsed_ms, result.progress[i - 1].elapsed_ms);
    EXPECT_GE(result.progress[i].n_unique, result.progress[i - 1].n_unique);
  }
}

TEST(GdParallel, StoreLimitRespectedUnderMerge) {
  const cnf::Formula formula = small_formula();
  RunOptions options = fast_options(30);
  options.store_limit = 10;
  GradientSampler sampler(small_config(4));
  const RunResult result = sampler.run(formula, options);
  EXPECT_LE(result.solutions.size(), 10u);
  for (const cnf::Assignment& solution : result.solutions) {
    EXPECT_TRUE(formula.satisfied_by(solution));
  }
}

// --- cooperative cancellation (RunOptions::stop) -----------------------------

TEST(GdParallel, PreFiredStopTokenReturnsImmediately) {
  const cnf::Formula formula = small_formula();
  util::StopSource source;
  source.request_stop();
  for (const std::size_t n_workers : {std::size_t{1}, std::size_t{3}}) {
    GradientSampler sampler(small_config(n_workers));
    RunOptions options = fast_options(1000000);  // unreachable target
    options.budget_ms = 60000.0;
    options.stop = source.token();
    util::Timer timer;
    const RunResult result = sampler.run(formula, options);
    // At most one round sneaks in before the first boundary poll.
    EXPECT_LT(timer.milliseconds(), 30000.0);
    EXPECT_TRUE(result.timed_out);
    EXPECT_EQ(result.n_invalid, 0u);
  }
}

TEST(GdParallel, AsyncStopCancelsALongRunCleanly) {
  const cnf::Formula formula = small_formula();
  for (const std::size_t n_workers : {std::size_t{1}, std::size_t{2}}) {
    GradientSampler sampler(small_config(n_workers));
    RunOptions options = fast_options(1000000);  // can never complete
    options.budget_ms = 120000.0;  // the stop must beat this by far
    util::StopSource source;
    options.stop = source.token();
    std::thread canceller([&source] {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      source.request_stop();
    });
    util::Timer timer;
    const RunResult result = sampler.run(formula, options);
    canceller.join();
    EXPECT_LT(timer.milliseconds(), 60000.0);
    // Partial results are intact: every surviving solution still verifies.
    EXPECT_EQ(result.n_invalid, 0u);
    EXPECT_GT(result.n_unique, 0u);
  }
}

TEST(GdParallel, EmptyStopTokenChangesNothing) {
  // The default token must be inert: identical results with and without an
  // (unfired) source attached.
  const cnf::Formula formula = small_formula();
  GradientSampler plain(small_config(1));
  const RunResult base = plain.run(formula, fast_options(40));
  util::StopSource source;  // never fired
  GradientSampler tokened(small_config(1));
  RunOptions options = fast_options(40);
  options.stop = source.token();
  const RunResult with_token = tokened.run(formula, options);
  EXPECT_EQ(base.n_unique, with_token.n_unique);
  EXPECT_EQ(base.n_valid, with_token.n_valid);
  ASSERT_EQ(base.solutions.size(), with_token.solutions.size());
  for (std::size_t i = 0; i < base.solutions.size(); ++i) {
    EXPECT_EQ(base.solutions[i], with_token.solutions[i]) << "solution " << i;
  }
}

// --- bank memory accounting (ShardedUniqueBank::size_bytes) ------------------

TEST(ShardedUniqueBank, SizeBytesGrowsLinearlyWithInserts) {
  ShardedUniqueBank bank(130);  // 3 words per key
  EXPECT_EQ(bank.size_bytes(), 0u);
  std::vector<std::uint64_t> key(bank.n_words(), 0);
  ASSERT_TRUE(bank.insert(key));
  const std::size_t per_key = bank.size_bytes();
  // At least the raw key words; plus bounded bookkeeping overhead.
  EXPECT_GE(per_key, bank.n_words() * sizeof(std::uint64_t));
  EXPECT_LE(per_key, bank.n_words() * sizeof(std::uint64_t) + 128u);
  for (std::uint64_t i = 1; i < 100; ++i) {
    key[0] = i;
    ASSERT_TRUE(bank.insert(key));
  }
  EXPECT_EQ(bank.size_bytes(), 100u * per_key);
  // Duplicates cost nothing.
  key[0] = 5;
  EXPECT_FALSE(bank.insert(key));
  EXPECT_EQ(bank.size_bytes(), 100u * per_key);
}

TEST(UniqueBank, SizeBytesMatchesShardedAccounting) {
  UniqueBank serial(70);
  ShardedUniqueBank sharded(70);
  std::vector<std::uint64_t> key(serial.n_words(), 0);
  for (std::uint64_t i = 0; i < 10; ++i) {
    key[0] = i;
    ASSERT_TRUE(serial.insert(key));
    ASSERT_TRUE(sharded.insert(key));
  }
  EXPECT_EQ(serial.size_bytes(), sharded.size_bytes());
  EXPECT_GT(serial.size_bytes(), 0u);
}

}  // namespace
}  // namespace hts::sampler
