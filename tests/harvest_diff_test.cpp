// Differential test harness for the word-parallel harvest pipeline.
//
// The compiled evaluator (circuit::EvalPlan) must be bit-identical to the
// scalar interpreter (Circuit::eval64) and to single-assignment evaluation
// (Circuit::eval) on *any* circuit — fuzzed here over seeded random circuits
// covering every gate type, n-ary fanins with duplicates, constants, BUF
// chains, and random output constraints — and the rewritten Harvester must
// reproduce the historical scalar unpack -> eval64 -> mask -> project
// pipeline result for result (counts, bank content, stored solutions, and
// solved masks) on the four benchgen families.
//
// The suite also pins the harvester's no-allocation contract: after the
// first collect() of a batch shape, repeated harvests perform zero heap
// allocations (measured by a global operator-new counting hook).

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstdlib>
#include <iterator>
#include <new>
#include <string_view>
#include <vector>

#include "benchgen/families.hpp"
#include "circuit/circuit.hpp"
#include "circuit/eval_plan.hpp"
#include "core/harvester.hpp"
#include "core/unique_bank.hpp"
#include "transform/transform.hpp"
#include "util/rng.hpp"

// --- global allocation counting hook ----------------------------------------
// Counts every operator-new in the test binary; tests snapshot the counter
// around a code region to assert it allocates nothing.  Deallocation
// functions must pair up for ASan builds, hence the full set of overloads.

namespace {
std::atomic<std::uint64_t> g_alloc_count{0};
}  // namespace

// The replacement pair is internally consistent (new -> malloc, delete ->
// free), but GCC/Clang pair call sites against the *declared* global
// operator new and flag the free() as mismatched.
#if defined(__GNUC__) || defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
// The nothrow forms must be replaced too: libstdc++'s temporary buffers
// (std::stable_sort et al.) allocate through them but deallocate through the
// plain/sized operator delete, so a half-replaced set would pair the default
// allocator with our free().
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size == 0 ? 1 : size);
}
void* operator new[](std::size_t size, const std::nothrow_t& tag) noexcept {
  return ::operator new(size, tag);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace hts {
namespace {

// --- seeded random circuits --------------------------------------------------

circuit::Circuit random_circuit(util::Rng& rng) {
  circuit::Circuit c;
  const std::size_t n_inputs = 1 + rng.next_below(32);
  const std::size_t n_gates = rng.next_below(150);
  for (std::size_t i = 0; i < n_inputs; ++i) (void)c.add_input();
  if (rng.next_bool(0.5)) (void)c.add_const(false);
  if (rng.next_bool(0.5)) (void)c.add_const(true);

  constexpr circuit::GateType kTypes[] = {
      circuit::GateType::kBuf,  circuit::GateType::kNot,
      circuit::GateType::kAnd,  circuit::GateType::kOr,
      circuit::GateType::kXor,  circuit::GateType::kNand,
      circuit::GateType::kNor,  circuit::GateType::kXnor};
  for (std::size_t g = 0; g < n_gates; ++g) {
    const circuit::GateType type = kTypes[rng.next_below(std::size(kTypes))];
    const auto n_signals = static_cast<std::uint64_t>(c.n_signals());
    std::size_t n_fanins = 1;
    if (type != circuit::GateType::kBuf && type != circuit::GateType::kNot) {
      // 1-ary n-ary gates are a corner the binarizer must fold to NOT/COPY;
      // duplicate fanins exercise commutative reassociation.
      n_fanins = 1 + rng.next_below(6);
    }
    std::vector<circuit::SignalId> fanins;
    fanins.reserve(n_fanins);
    for (std::size_t f = 0; f < n_fanins; ++f) {
      fanins.push_back(static_cast<circuit::SignalId>(rng.next_below(n_signals)));
    }
    (void)c.add_gate(type, std::move(fanins));
  }
  const std::size_t n_outputs = rng.next_below(6);
  for (std::size_t o = 0; o < n_outputs; ++o) {
    c.add_output(static_cast<circuit::SignalId>(
                     rng.next_below(static_cast<std::uint64_t>(c.n_signals()))),
                 rng.next_bool());
  }
  return c;
}

std::vector<std::uint64_t> random_words(util::Rng& rng, std::size_t n) {
  std::vector<std::uint64_t> words(n);
  for (std::uint64_t& w : words) w = rng.next_u64();
  return words;
}

// --- fuzz: compiled evaluator vs scalar eval64 vs single-row eval -----------

TEST(HarvestDiff, CompiledEvaluatorMatchesScalarOnRandomCircuits) {
  for (std::uint64_t seed = 1; seed <= 60; ++seed) {
    util::Rng rng(seed);
    const circuit::Circuit c = random_circuit(rng);
    const circuit::EvalPlan plan(c);
    ASSERT_GE(plan.n_slots(), c.n_signals()) << "seed " << seed;

    const std::vector<std::uint64_t> inputs = random_words(rng, c.n_inputs());
    const std::vector<std::uint64_t> scalar = c.eval64(inputs);
    const std::vector<std::uint64_t> compiled = plan.eval64(inputs);
    ASSERT_EQ(scalar.size(), compiled.size()) << "seed " << seed;
    for (circuit::SignalId s = 0; s < scalar.size(); ++s) {
      ASSERT_EQ(scalar[s], compiled[s])
          << "seed " << seed << " signal " << s << " ("
          << circuit::gate_type_name(c.gate(s).type) << ")";
    }

    // Single-assignment evaluation agrees lane by lane.
    for (const std::size_t r : {std::size_t{0}, std::size_t{17}, std::size_t{63}}) {
      std::vector<std::uint8_t> bits(c.n_inputs());
      for (std::size_t i = 0; i < bits.size(); ++i) {
        bits[i] = static_cast<std::uint8_t>((inputs[i] >> r) & 1ULL);
      }
      const std::vector<std::uint8_t> row = c.eval(bits);
      for (circuit::SignalId s = 0; s < row.size(); ++s) {
        ASSERT_EQ(row[s], static_cast<std::uint8_t>((compiled[s] >> r) & 1ULL))
            << "seed " << seed << " signal " << s << " row " << r;
      }
    }
  }
}

TEST(HarvestDiff, BlockEvaluationMatchesScalarPerWordIncludingPartialBlocks) {
  // 7 words = one full 4-word block plus a 3-word tail; the packed layout is
  // the harden() one (packed[input * n_words + w]).
  constexpr std::size_t kWords = 7;
  for (std::uint64_t seed = 100; seed <= 130; ++seed) {
    util::Rng rng(seed);
    const circuit::Circuit c = random_circuit(rng);
    const circuit::EvalPlan plan(c);
    const std::vector<std::uint64_t> packed =
        random_words(rng, c.n_inputs() * kWords);

    std::vector<std::uint64_t> slots(plan.scratch_words());
    std::vector<std::uint64_t> word_inputs(c.n_inputs());
    for (std::size_t w0 = 0; w0 < kWords; w0 += circuit::EvalPlan::kBlockWords) {
      const std::size_t count =
          std::min(circuit::EvalPlan::kBlockWords, kWords - w0);
      plan.eval_block(packed.data(), kWords, w0, count, slots.data());
      for (std::size_t lane = 0; lane < count; ++lane) {
        const std::size_t w = w0 + lane;
        for (std::size_t i = 0; i < c.n_inputs(); ++i) {
          word_inputs[i] = packed[i * kWords + w];
        }
        const std::vector<std::uint64_t> scalar = c.eval64(word_inputs);
        for (circuit::SignalId s = 0; s < scalar.size(); ++s) {
          ASSERT_EQ(scalar[s],
                    circuit::EvalPlan::signal_word(slots.data(), s, lane))
              << "seed " << seed << " word " << w << " signal " << s;
        }
        ASSERT_EQ(c.outputs_satisfied64(scalar),
                  plan.satisfied(slots.data(), lane))
            << "seed " << seed << " word " << w;
      }
    }
  }
}

TEST(HarvestDiff, PlanRunsAreOpcodeUniformAndCoverThePlan) {
  for (std::uint64_t seed = 200; seed <= 220; ++seed) {
    util::Rng rng(seed);
    const circuit::Circuit c = random_circuit(rng);
    const circuit::EvalPlan plan(c);
    const circuit::EvalPlanStats& stats = plan.stats();
    if (stats.n_ops == 0) {
      EXPECT_EQ(stats.n_runs, 0u) << "seed " << seed;
      continue;
    }
    EXPECT_GE(stats.n_runs, 1u) << "seed " << seed;
    EXPECT_LE(stats.n_runs, stats.n_ops) << "seed " << seed;
    EXPECT_GE(stats.max_run_length, 1u) << "seed " << seed;
    EXPECT_LE(stats.max_run_length, stats.n_ops) << "seed " << seed;
    EXPECT_GE(stats.n_levels, 1u) << "seed " << seed;
  }
}

// --- end-to-end: Harvester vs the historical scalar pipeline ----------------

/// The pre-EvalPlan Harvester::collect, kept verbatim as the reference
/// implementation: per word, unpack the inputs, interpret the circuit with
/// eval64, mask, then project accepted rows.
struct ScalarReference {
  const sampler::GdProblem& problem;
  const cnf::Formula& formula;
  const sampler::RunOptions& options;
  sampler::UniqueBank& bank;
  sampler::RunResult& result;
  std::vector<std::uint64_t> solved_mask;

  void collect(const std::vector<std::uint64_t>& packed, std::size_t n_words,
               std::size_t batch) {
    const circuit::Circuit& circuit = *problem.circuit;
    const std::size_t n_inputs = circuit.n_inputs();
    std::vector<std::uint64_t> input_words(n_inputs);
    solved_mask.assign(n_words, 0);
    for (std::size_t w = 0; w < n_words; ++w) {
      for (std::size_t i = 0; i < n_inputs; ++i) {
        input_words[i] = packed[i * n_words + w];
      }
      const std::vector<std::uint64_t> values = circuit.eval64(input_words);
      std::uint64_t ok = circuit.outputs_satisfied64(values);
      const std::size_t rows_here = std::min<std::size_t>(64, batch - w * 64);
      if (rows_here < 64) ok &= (1ULL << rows_here) - 1;
      solved_mask[w] = ok;
      while (ok != 0) {
        const int r = std::countr_zero(ok);
        ok &= ok - 1;
        accept_row(input_words, values, static_cast<std::size_t>(r));
      }
    }
  }

  void accept_row(const std::vector<std::uint64_t>& input_words,
                  const std::vector<std::uint64_t>& values, std::size_t r) {
    std::vector<std::uint64_t> key(bank.n_words(), 0);
    for (std::size_t i = 0; i < input_words.size(); ++i) {
      if (((input_words[i] >> r) & 1ULL) != 0) key[i >> 6] |= (1ULL << (i & 63));
    }
    ++result.n_valid;
    const bool is_new = bank.insert(key);
    if (!is_new && !options.store_all_draws) return;
    const bool want_assignment =
        result.solutions.size() < options.store_limit ||
        (is_new && options.verify_against_cnf);
    if (!want_assignment) return;
    const auto& var_signal = *problem.var_signal;
    cnf::Assignment assignment(var_signal.size(), 0);
    for (cnf::Var v = 0; v < var_signal.size(); ++v) {
      assignment[v] =
          static_cast<std::uint8_t>((values[var_signal[v]] >> r) & 1ULL);
    }
    if (options.verify_against_cnf && !formula.satisfied_by(assignment)) {
      ++result.n_invalid;
    }
    if (result.solutions.size() < options.store_limit) {
      result.solutions.push_back(std::move(assignment));
    }
  }
};

class HarvestFamilies : public ::testing::TestWithParam<const char*> {};

TEST_P(HarvestFamilies, HarvesterMatchesScalarPipelineEndToEnd) {
  benchgen::GenOptions gen;
  gen.scale = 0.05;
  const benchgen::Instance instance = benchgen::make_instance(GetParam(), gen);
  const transform::Result transformed =
      transform::transform_cnf(instance.formula);
  sampler::GdProblem problem;
  problem.circuit = &transformed.circuit;
  problem.var_signal = &transformed.var_signal;

  sampler::RunOptions options;
  options.store_limit = 100000;
  options.verify_against_cnf = true;

  // Random hardened batches (uniform bits satisfy often enough on these
  // scaled instances to exercise the accept path), including a partial final
  // word: batch 300 rows over 5 words.
  constexpr std::size_t kWords = 5;
  constexpr std::size_t kBatch = 300;
  util::Rng rng(0xd1ff + std::string_view(GetParam()).size());
  const std::vector<std::uint64_t> packed =
      random_words(rng, transformed.circuit.n_inputs() * kWords);

  sampler::RunResult ref_result;
  sampler::UniqueBank ref_bank(transformed.circuit.n_inputs());
  ScalarReference reference{problem, instance.formula, options, ref_bank,
                            ref_result, {}};

  sampler::RunResult new_result;
  sampler::UniqueBank new_bank(transformed.circuit.n_inputs());
  sampler::Harvester<sampler::UniqueBank> harvester(
      problem, instance.formula, options, new_bank, new_result);

  // Two rounds over the same packed data: the second exercises the
  // duplicate-heavy path and the reused scratch.
  for (int round = 0; round < 2; ++round) {
    reference.collect(packed, kWords, kBatch);
    harvester.collect(packed, kWords, kBatch);
    ASSERT_EQ(reference.solved_mask, harvester.last_solved())
        << GetParam() << " round " << round;
    ASSERT_EQ(ref_result.n_valid, new_result.n_valid)
        << GetParam() << " round " << round;
    ASSERT_EQ(ref_result.n_invalid, new_result.n_invalid)
        << GetParam() << " round " << round;
    ASSERT_EQ(ref_bank.size(), new_bank.size())
        << GetParam() << " round " << round;
    ASSERT_EQ(ref_result.solutions, new_result.solutions)
        << GetParam() << " round " << round;
  }
  EXPECT_EQ(new_result.n_invalid, 0u) << GetParam();
  EXPECT_EQ(harvester.rows_validated(), 2 * kBatch) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, HarvestFamilies,
                         ::testing::Values("or-50-10-7-UC-10", "75-10-1-q",
                                           "s15850a_3_2", "Prod-8"),
                         [](const ::testing::TestParamInfo<const char*>& info) {
                           std::string name = info.param;
                           for (char& ch : name) {
                             if (ch == '-') ch = '_';
                           }
                           return name;
                         });

// --- repeated harvests allocate nothing -------------------------------------

TEST(HarvestDiff, RepeatedHarvestsDoNotAllocate) {
  // OR(a, b) constrained true: 3 of 4 input patterns satisfy, so the first
  // collect banks every reachable key and the second is pure duplicates.
  circuit::Circuit c;
  const auto a = c.add_input();
  const auto b = c.add_input();
  const auto o = c.add_gate(circuit::GateType::kOr, {a, b});
  c.add_output(o, true);
  const std::vector<circuit::SignalId> var_signal = {a, b};
  sampler::GdProblem problem;
  problem.circuit = &c;
  problem.var_signal = &var_signal;
  const cnf::Formula formula;  // never consulted: verify_against_cnf off

  sampler::RunOptions options;
  options.store_limit = 0;  // storing solutions may allocate by design

  sampler::RunResult result;
  sampler::UniqueBank bank(c.n_inputs());
  sampler::Harvester<sampler::UniqueBank> harvester(problem, formula, options,
                                                    bank, result);

  // One word (64 rows): a single block, so collect() stays on the inline
  // path regardless of the machine's thread count.
  util::Rng rng(77);
  const std::vector<std::uint64_t> packed = random_words(rng, c.n_inputs());
  harvester.collect(packed, 1, 64);
  ASSERT_GT(result.n_valid, 0u);
  ASSERT_GT(bank.size(), 0u);
  const std::size_t valid_per_round = result.n_valid;
  const std::size_t uniques = bank.size();

  const std::uint64_t before = g_alloc_count.load(std::memory_order_relaxed);
  harvester.collect(packed, 1, 64);
  const std::uint64_t after = g_alloc_count.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u)
      << "repeated collect() performed heap allocations";
  EXPECT_EQ(result.n_valid, 2 * valid_per_round);
  EXPECT_EQ(bank.size(), uniques)
      << "second collect must re-observe exactly the first round's keys";
}

}  // namespace
}  // namespace hts
