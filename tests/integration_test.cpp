// End-to-end pipeline tests: generate a benchmark instance, round-trip it
// through DIMACS, transform, sample with every sampler, and cross-check all
// emitted solutions against the original CNF and against exact model counts
// where enumerable.

#include <gtest/gtest.h>

#include <memory>

#include "aig/aig.hpp"
#include "baselines/cmsgen_like.hpp"
#include "baselines/diff_sampler.hpp"
#include "baselines/unigen_like.hpp"
#include "baselines/walksat_sampler.hpp"
#include "benchgen/families.hpp"
#include "cnf/dimacs.hpp"
#include "core/circuit_sampler.hpp"
#include "core/gradient_sampler.hpp"
#include "solver/cdcl.hpp"
#include "transform/transform.hpp"

namespace hts {
namespace {

benchgen::GenOptions tiny_scale() {
  benchgen::GenOptions options;
  options.scale = 0.02;
  return options;
}

sampler::RunOptions options_for(std::size_t min_solutions, double budget_ms) {
  sampler::RunOptions options;
  options.min_solutions = min_solutions;
  options.budget_ms = budget_ms;
  options.store_limit = 256;
  options.verify_against_cnf = true;
  options.seed = 7;
  return options;
}

sampler::GradientConfig gd_config() {
  sampler::GradientConfig config;
  config.batch = 512;
  config.policy = tensor::Policy::kDataParallel;
  return config;
}

class FamilyPipeline : public ::testing::TestWithParam<const char*> {};

TEST_P(FamilyPipeline, GenerateTransformSampleVerify) {
  const benchgen::Instance instance =
      benchgen::make_instance(GetParam(), tiny_scale());

  // DIMACS round trip first: the pipeline must survive serialization.
  const cnf::Formula formula = cnf::parse_dimacs_string(
      cnf::to_dimacs_string(instance.formula, instance.name));
  ASSERT_EQ(formula.n_clauses(), instance.formula.n_clauses());

  sampler::GradientSampler sampler(gd_config());
  const sampler::RunResult result = sampler.run(formula, options_for(20, 8000.0));
  EXPECT_GE(result.n_unique, 20u) << instance.name;
  EXPECT_EQ(result.n_invalid, 0u) << instance.name;
  for (const cnf::Assignment& solution : result.solutions) {
    EXPECT_TRUE(formula.satisfied_by(solution));
  }
}

INSTANTIATE_TEST_SUITE_P(Families, FamilyPipeline,
                         ::testing::Values("or-50-10-7-UC-10", "75-10-1-q",
                                           "s15850a_3_2", "Prod-8"),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
                           }
                           return name;
                         });

TEST(Integration, AllSamplersAgreeOnValidity) {
  const benchgen::Instance instance =
      benchgen::make_instance("or-50-10-7-UC-10", tiny_scale());

  std::vector<std::unique_ptr<sampler::Sampler>> samplers;
  samplers.push_back(std::make_unique<sampler::GradientSampler>(gd_config()));
  samplers.push_back(std::make_unique<baselines::CmsGenLike>());
  samplers.push_back(std::make_unique<baselines::UniGenLike>());
  {
    baselines::DiffSamplerConfig config;
    config.batch = 512;
    samplers.push_back(std::make_unique<baselines::DiffSampler>(config));
  }
  samplers.push_back(std::make_unique<baselines::WalkSatSampler>());

  for (const auto& s : samplers) {
    const sampler::RunResult result =
        s->run(instance.formula, options_for(5, 6000.0));
    EXPECT_GE(result.n_unique, 5u) << s->name();
    EXPECT_EQ(result.n_invalid, 0u) << s->name();
  }
}

TEST(Integration, GradientSamplerMatchesSolverOnSatisfiability) {
  // Across a batch of small random instances: whenever CDCL says SAT the
  // gradient sampler should find at least one solution quickly (these are
  // easy instances), and when UNSAT it must find none.
  util::Rng rng(31415);
  int checked_sat = 0;
  int found_sat = 0;
  for (int trial = 0; trial < 12; ++trial) {
    cnf::Formula f(10);
    const std::size_t n_clauses = 22 + rng.next_below(16);
    for (std::size_t c = 0; c < n_clauses; ++c) {
      cnf::Clause clause;
      while (clause.size() < 3) {
        const cnf::Lit lit(static_cast<cnf::Var>(rng.next_below(10)),
                           rng.next_bool());
        bool dup = false;
        for (const cnf::Lit l : clause) dup |= l.var() == lit.var();
        if (!dup) clause.push_back(lit);
      }
      f.add_clause(clause);
    }
    const bool is_sat = solver::solve_formula(f) == solver::Status::kSat;
    sampler::GradientSampler sampler(gd_config());
    const sampler::RunResult result = sampler.run(f, options_for(1, 1500.0));
    if (is_sat) {
      ++checked_sat;
      if (result.n_unique >= 1) ++found_sat;
      EXPECT_EQ(result.n_invalid, 0u);
    } else {
      EXPECT_EQ(result.n_unique, 0u) << "UNSAT instance produced a solution";
    }
  }
  // GD is incomplete, but on 10-var instances it should almost always land.
  if (checked_sat > 0) {
    EXPECT_GE(found_sat * 10, checked_sat * 8)
        << found_sat << "/" << checked_sat;
  }
}

TEST(Integration, TransformedSamplingBeatsFlatOnStructured) {
  // The headline claim, miniaturized: on a Tseitin-structured instance the
  // transformed sampler needs fewer ops per sample than flat-CNF GD.
  const benchgen::Instance instance = benchgen::make_instance("75-10-1-q");
  const auto transformed = transform::transform_cnf(instance.formula);
  const baselines::FlatProblem flat =
      baselines::build_flat_problem(instance.formula);
  EXPECT_LT(transformed.circuit.op_count_2input(),
            flat.circuit.op_count_2input());
  // Reduction factor should be in the paper's reported range (~3.6-4.5x for
  // its 4 ablation instances; accept anything solidly > 2).
  const double reduction = static_cast<double>(flat.circuit.op_count_2input()) /
                           static_cast<double>(transformed.circuit.op_count_2input());
  EXPECT_GT(reduction, 2.0);
}

TEST(Integration, AigPassPreservesPipelineSemantics) {
  // transform -> AIG structural hashing -> direct circuit sampling; every
  // sample must project (through signal_map and var_signal) to a model of
  // the original CNF.
  const benchgen::Instance instance = benchgen::make_instance("75-10-1-q");
  const transform::Result tr = transform::transform_cnf(instance.formula);
  const aig::OptimizeResult opt = aig::optimize_with_aig(tr.circuit);

  sampler::CircuitSamplerConfig config;
  config.batch = 2048;
  sampler::CircuitSampler sampler(opt.circuit, config);
  sampler::RunOptions options;
  options.min_solutions = 25;
  options.budget_ms = 8000.0;
  options.store_limit = 25;
  const sampler::RunResult result = sampler.run(options);
  ASSERT_GE(result.n_unique, 25u);

  // Rebuild original-variable assignments: inputs of the optimized circuit
  // correspond 1:1 (same order) to inputs of the transformed circuit.
  for (const cnf::Assignment& inputs : result.solutions) {
    const auto values = opt.circuit.eval(
        std::vector<std::uint8_t>(inputs.begin(), inputs.end()));
    cnf::Assignment assignment(instance.formula.n_vars(), 0);
    for (cnf::Var v = 0; v < instance.formula.n_vars(); ++v) {
      assignment[v] = values[opt.signal_map[tr.var_signal[v]]];
    }
    EXPECT_TRUE(instance.formula.satisfied_by(assignment));
  }
}

TEST(Integration, AigPassPreservesWitness) {
  for (const char* name : {"or-50-10-7-UC-10", "Prod-8"}) {
    benchgen::GenOptions gen;
    gen.scale = 0.05;
    const benchgen::Instance instance = benchgen::make_instance(name, gen);
    const aig::OptimizeResult opt = aig::optimize_with_aig(instance.circuit);
    std::vector<std::uint8_t> inputs;
    for (const auto input : instance.circuit.inputs()) {
      inputs.push_back(instance.witness[instance.signal_var[input]]);
    }
    const auto values = opt.circuit.eval(inputs);
    EXPECT_TRUE(opt.circuit.outputs_satisfied(values)) << name;
  }
}

TEST(Integration, WitnessSurvivesDimacsRoundTrip) {
  const benchgen::Instance instance = benchgen::make_instance("or-60-20-10-UC-10");
  const cnf::Formula reparsed = cnf::parse_dimacs_string(
      cnf::to_dimacs_string(instance.formula));
  EXPECT_TRUE(reparsed.satisfied_by(instance.witness));
}

}  // namespace
}  // namespace hts
