// Plan-IR verifier (verify/plan_verifier.hpp): green paths over every
// benchgen family's compiled artifacts, then mutation tests — each class of
// corruption applied to a healthy plan must be rejected with the *right*
// rule, so a verifier that rubber-stamps or misclassifies fails here even
// though every production plan it sees is well-formed.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "benchgen/families.hpp"
#include "circuit/eval_plan.hpp"
#include "prob/compiled.hpp"
#include "verify/plan_verifier.hpp"

namespace hts {
namespace {

using prob::CompiledCircuit;
using prob::OpCode;
using prob::TapeOp;
using verify::Report;
using verify::Rule;

bool has_rule(const Report& report, Rule rule) {
  return std::any_of(report.diagnostics.begin(), report.diagnostics.end(),
                     [rule](const verify::Diagnostic& d) {
                       return d.rule == rule;
                     });
}

std::string rules_of(const Report& report) { return report.to_string(); }

// ---- mutable copies of the compiled artifacts -----------------------------
// Tests corrupt these copies and verify through raw-array views, so no
// mutation ever touches (or needs) the production objects.

struct MutableExec {
  std::size_t n_slots = 0;
  std::vector<TapeOp> tape;
  std::vector<OpCode> op;
  std::vector<std::uint32_t> dst, a, b;
  std::vector<std::uint32_t> level_begin, group_begin, level_group, run_begin;
  std::vector<std::int32_t> input_slot;
  std::vector<CompiledCircuit::ConstSlot> const_slots;
  std::vector<CompiledCircuit::Output> outputs;

  static MutableExec of(const CompiledCircuit& compiled) {
    const prob::ExecPlan& plan = compiled.plan();
    MutableExec m;
    m.n_slots = compiled.n_slots();
    m.tape = compiled.tape();
    m.op = plan.op;
    m.dst = plan.dst;
    m.a = plan.a;
    m.b = plan.b;
    m.level_begin = plan.level_begin;
    m.group_begin = plan.group_begin;
    m.level_group = plan.level_group;
    m.run_begin = plan.run_begin;
    m.input_slot = compiled.input_slot();
    m.const_slots = compiled.const_slots();
    m.outputs = compiled.outputs();
    return m;
  }

  [[nodiscard]] verify::ExecPlanView view() const {
    verify::ExecPlanView v;
    v.n_slots = n_slots;
    v.tape = tape;
    v.op = op;
    v.dst = dst;
    v.a = a;
    v.b = b;
    v.level_begin = level_begin;
    v.group_begin = group_begin;
    v.level_group = level_group;
    v.run_begin = run_begin;
    v.input_slot = input_slot;
    v.const_slots = const_slots;
    v.outputs = outputs;
    return v;
  }

  /// Tape index of the op defining `slot` (plans are SSA, so it is unique).
  [[nodiscard]] std::size_t tape_index_of_dst(std::uint32_t slot) const {
    for (std::size_t i = 0; i < tape.size(); ++i) {
      if (tape[i].dst == slot) return i;
    }
    ADD_FAILURE() << "no tape op defines slot " << slot;
    return 0;
  }

  /// First plan pair (producer j, consumer k) where k's operand `a` is
  /// defined by plan op j — the canonical dependent pair for reorderings.
  [[nodiscard]] std::pair<std::size_t, std::size_t> dependent_pair() const {
    std::vector<std::int64_t> def_pos(n_slots, -1);
    for (std::size_t k = 0; k < op.size(); ++k) {
      if (def_pos[a[k]] >= 0) {
        return {static_cast<std::size_t>(def_pos[a[k]]), k};
      }
      def_pos[dst[k]] = static_cast<std::int64_t>(k);
    }
    ADD_FAILURE() << "plan has no dependent op pair";
    return {0, 0};
  }

  void swap_rows(std::size_t i, std::size_t j) {
    std::swap(op[i], op[j]);
    std::swap(dst[i], dst[j]);
    std::swap(a[i], a[j]);
    std::swap(b[i], b[j]);
  }
};

struct MutableEval {
  std::size_t n_slots = 0;
  std::size_t n_signals = 0;
  std::vector<circuit::WordOp> op;
  std::vector<std::uint32_t> dst, a, b, run_begin;
  std::vector<circuit::SignalId> inputs;
  std::vector<circuit::EvalPlan::ConstSlot> const_slots;
  std::vector<circuit::OutputConstraint> outputs;

  static MutableEval of(const circuit::EvalPlan& plan) {
    MutableEval m;
    m.n_slots = plan.n_slots();
    m.n_signals = plan.n_signals();
    m.op = plan.ops();
    m.dst = plan.dsts();
    m.a = plan.operand_a();
    m.b = plan.operand_b();
    m.run_begin = plan.run_begin();
    m.inputs = plan.input_signals();
    m.const_slots = plan.const_slots();
    m.outputs = plan.output_constraints();
    return m;
  }

  [[nodiscard]] verify::EvalPlanView view() const {
    verify::EvalPlanView v;
    v.n_slots = n_slots;
    v.n_signals = n_signals;
    v.op = op;
    v.dst = dst;
    v.a = a;
    v.b = b;
    v.run_begin = run_begin;
    v.inputs = inputs;
    v.const_slots = const_slots;
    v.outputs = outputs;
    return v;
  }

  [[nodiscard]] std::pair<std::size_t, std::size_t> dependent_pair() const {
    std::vector<std::int64_t> def_pos(n_slots, -1);
    for (std::size_t k = 0; k < op.size(); ++k) {
      if (def_pos[a[k]] >= 0) {
        return {static_cast<std::size_t>(def_pos[a[k]]), k};
      }
      def_pos[dst[k]] = static_cast<std::int64_t>(k);
    }
    ADD_FAILURE() << "plan has no dependent op pair";
    return {0, 0};
  }

  void swap_rows(std::size_t i, std::size_t j) {
    std::swap(op[i], op[j]);
    std::swap(dst[i], dst[j]);
    std::swap(a[i], a[j]);
    std::swap(b[i], b[j]);
  }
};

/// The small family keeps mutation scans cheap; structure is still rich
/// (multiple levels, groups, and multi-op runs).
constexpr const char* kMutationFamily = "or-50-10-7-UC-10";

MutableExec healthy_exec(bool optimize) {
  const benchgen::Instance instance = benchgen::make_instance(kMutationFamily);
  const CompiledCircuit compiled(instance.circuit,
                                 CompiledCircuit::Options{false, optimize});
  return MutableExec::of(compiled);
}

MutableEval healthy_eval() {
  const benchgen::Instance instance = benchgen::make_instance(kMutationFamily);
  return MutableEval::of(circuit::EvalPlan(instance.circuit));
}

verify::Options exec_options(bool optimized) {
  verify::Options options;
  options.optimized = optimized;
  return options;
}

// ---- green paths ----------------------------------------------------------

class PlanVerifierFamilies : public ::testing::TestWithParam<const char*> {};

TEST_P(PlanVerifierFamilies, AcceptsAllCompiledArtifacts) {
  const benchgen::Instance instance = benchgen::make_instance(GetParam());
  const CompiledCircuit raw(instance.circuit,
                            CompiledCircuit::Options{false, false});
  const CompiledCircuit opt(instance.circuit,
                            CompiledCircuit::Options{false, true});
  const CompiledCircuit cone(instance.circuit,
                             CompiledCircuit::Options{true, true});
  const circuit::EvalPlan eval_plan(instance.circuit);

  for (const CompiledCircuit* compiled : {&raw, &opt, &cone}) {
    const Report report = verify::verify_exec_plan(*compiled);
    EXPECT_TRUE(report.ok()) << GetParam() << ": " << rules_of(report);
  }
  const Report eval_report = verify::verify_eval_plan(eval_plan);
  EXPECT_TRUE(eval_report.ok()) << GetParam() << ": " << rules_of(eval_report);
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, PlanVerifierFamilies,
                         ::testing::Values("or-50-10-7-UC-10", "75-10-1-q",
                                           "s15850a_3_2", "Prod-8"),
                         [](const ::testing::TestParamInfo<const char*>& info) {
                           std::string name = info.param;
                           for (char& ch : name) {
                             if (ch == '-') ch = '_';
                           }
                           return name;
                         });

TEST(PlanVerifier, ReportRendersRuleAndOpIndex) {
  MutableExec m = healthy_exec(false);
  m.a[0] = static_cast<std::uint32_t>(m.n_slots) + 7;
  if (!op_is_binary(m.op[0])) m.b[0] = m.a[0];  // keep the unary mirror
  const Report report = verify::verify_exec_plan(m.view(), exec_options(false));
  ASSERT_FALSE(report.ok());
  const std::string text = report.to_string();
  EXPECT_NE(text.find("slot-bounds"), std::string::npos) << text;
  EXPECT_NE(text.find("op 0"), std::string::npos) << text;
}

TEST(PlanVerifier, RuntimeSwitchRoundTrips) {
  const bool before = verify::plans_verified();
  verify::set_verify_plans(true);
  EXPECT_TRUE(verify::plans_verified());
  // Construction under the hook must pass cleanly for a healthy circuit.
  const benchgen::Instance instance = benchgen::make_instance(kMutationFamily);
  const CompiledCircuit compiled(instance.circuit);
  const circuit::EvalPlan eval_plan(instance.circuit);
  EXPECT_GT(compiled.n_ops(), 0u);
  EXPECT_GT(eval_plan.stats().n_ops, 0u);
  verify::set_verify_plans(false);
  EXPECT_FALSE(verify::plans_verified());
  verify::set_verify_plans(before);
}

// ---- ExecPlan mutations ---------------------------------------------------

TEST(ExecPlanMutations, SwappedDependentOpsAreRejected) {
  MutableExec m = healthy_exec(false);
  const auto [producer, consumer] = m.dependent_pair();
  m.swap_rows(producer, consumer);
  const Report report = verify::verify_exec_plan(m.view(), exec_options(false));
  // The consumer now runs first: its operand is undefined at that point, and
  // at least one of the pair sits at the wrong ASAP level.
  EXPECT_TRUE(has_rule(report, Rule::kDefBeforeUse)) << rules_of(report);
}

TEST(ExecPlanMutations, MisplacedLevelBoundaryIsRejected) {
  // Hand-built three-op plan: A and B at level 0, C = Or(A, B) at level 1.
  // Shifting the level boundary publishes B at level 1 while its exact ASAP
  // level stays 0 — only kLevelOrder can catch this (order, SSA, runs, and
  // the tape permutation all stay intact).
  MutableExec m;
  m.n_slots = 5;
  m.input_slot = {0, 1};
  m.outputs = {CompiledCircuit::Output{4, 1.0f}};
  m.tape = {TapeOp{OpCode::kAnd, 2, 0, 1}, TapeOp{OpCode::kXor, 3, 0, 1},
            TapeOp{OpCode::kOr, 4, 2, 3}};
  m.op = {OpCode::kAnd, OpCode::kXor, OpCode::kOr};
  m.dst = {2, 3, 4};
  m.a = {0, 0, 2};
  m.b = {1, 1, 3};
  m.level_begin = {0, 2, 3};
  m.group_begin = {0, 2, 3};  // A and B share operands -> one group
  m.level_group = {0, 1, 2};
  m.run_begin = {0, 1, 2, 3};
  ASSERT_TRUE(verify::verify_exec_plan(m.view(), exec_options(false)).ok());

  m.level_begin = {0, 1, 3};
  m.group_begin = {0, 1, 2, 3};  // B and C are operand-disjoint
  m.level_group = {0, 1, 3};
  const Report report = verify::verify_exec_plan(m.view(), exec_options(false));
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(has_rule(report, Rule::kLevelOrder)) << rules_of(report);
  EXPECT_FALSE(has_rule(report, Rule::kDefBeforeUse)) << rules_of(report);
}

TEST(ExecPlanMutations, DuplicatedSsaDefinitionIsRejected) {
  MutableExec m = healthy_exec(false);
  const std::size_t last = m.op.size() - 1;
  const std::size_t tape_index = m.tape_index_of_dst(m.dst[last]);
  m.tape[tape_index].dst = m.dst[0];
  m.dst[last] = m.dst[0];
  const Report report = verify::verify_exec_plan(m.view(), exec_options(false));
  EXPECT_TRUE(has_rule(report, Rule::kSsa)) << rules_of(report);
}

TEST(ExecPlanMutations, OperandAtUndefinedSlotIsRejected) {
  MutableExec m = healthy_exec(false);
  const std::uint32_t ghost = static_cast<std::uint32_t>(m.n_slots);
  ++m.n_slots;  // in bounds, but nothing ever defines it
  const std::size_t victim = m.op.size() - 1;
  const std::size_t tape_index = m.tape_index_of_dst(m.dst[victim]);
  m.tape[tape_index].a = ghost;
  m.a[victim] = ghost;
  if (!op_is_binary(m.op[victim])) m.b[victim] = ghost;
  const Report report = verify::verify_exec_plan(m.view(), exec_options(false));
  EXPECT_TRUE(has_rule(report, Rule::kDefBeforeUse)) << rules_of(report);
}

TEST(ExecPlanMutations, OperandOutOfBoundsIsRejected) {
  MutableExec m = healthy_exec(false);
  const std::size_t victim = m.op.size() / 2;
  const std::size_t tape_index = m.tape_index_of_dst(m.dst[victim]);
  const std::uint32_t wild = static_cast<std::uint32_t>(m.n_slots) + 7;
  m.tape[tape_index].a = wild;
  m.a[victim] = wild;
  if (!op_is_binary(m.op[victim])) m.b[victim] = wild;
  const Report report = verify::verify_exec_plan(m.view(), exec_options(false));
  EXPECT_TRUE(has_rule(report, Rule::kSlotBounds)) << rules_of(report);
}

TEST(ExecPlanMutations, MergedBackwardGroupsSharingOperandAreRejected) {
  MutableExec m = healthy_exec(true);
  // Find a level holding two groups and rewire the second group's first op
  // to read the first group's first operand — the shared slot makes the
  // chunked backward sweep race.
  std::size_t level = m.level_group.size();
  for (std::size_t l = 0; l + 1 < m.level_group.size(); ++l) {
    if (m.level_group[l + 1] - m.level_group[l] >= 2) {
      level = l;
      break;
    }
  }
  ASSERT_LT(level, m.level_group.size()) << "no level with two groups";
  const std::uint32_t g1 = m.level_group[level];
  const std::size_t k1 = m.group_begin[g1];
  const std::size_t k2 = m.group_begin[g1 + 1];
  const std::size_t tape_index = m.tape_index_of_dst(m.dst[k2]);
  m.tape[tape_index].a = m.a[k1];
  m.a[k2] = m.a[k1];
  if (!op_is_binary(m.op[k2])) m.b[k2] = m.a[k1];
  const Report report = verify::verify_exec_plan(m.view(), exec_options(true));
  EXPECT_TRUE(has_rule(report, Rule::kGroupDisjoint)) << rules_of(report);
}

TEST(ExecPlanMutations, RunCrossingALevelBoundaryIsRejected) {
  MutableExec m = healthy_exec(true);
  ASSERT_GT(m.level_begin.size(), 2u);
  const std::uint32_t boundary = m.level_begin[1];
  const auto it =
      std::find(m.run_begin.begin(), m.run_begin.end(), boundary);
  ASSERT_NE(it, m.run_begin.end());
  m.run_begin.erase(it);  // the first level's last run now crosses into L1
  const Report report = verify::verify_exec_plan(m.view(), exec_options(true));
  EXPECT_TRUE(has_rule(report, Rule::kRunPartition)) << rules_of(report);
}

TEST(ExecPlanMutations, SplitRunInsideALevelIsRejected) {
  MutableExec m = healthy_exec(true);
  std::size_t run = m.run_begin.size();
  for (std::size_t r = 0; r + 1 < m.run_begin.size(); ++r) {
    if (m.run_begin[r + 1] - m.run_begin[r] >= 2) {
      run = r;
      break;
    }
  }
  ASSERT_LT(run, m.run_begin.size()) << "no run of length >= 2";
  // Runs never cross levels, so a mid-run index is not a level boundary:
  // the inserted split leaves two adjacent same-opcode runs in one level.
  m.run_begin.insert(m.run_begin.begin() + static_cast<std::ptrdiff_t>(run) + 1,
                     m.run_begin[run] + 1);
  const Report report = verify::verify_exec_plan(m.view(), exec_options(true));
  EXPECT_TRUE(has_rule(report, Rule::kRunPartition)) << rules_of(report);
}

TEST(ExecPlanMutations, ResurrectedDeadOpIsRejectedOnOptimizedTapes) {
  MutableExec m = healthy_exec(true);
  const std::size_t n = m.op.size();
  const std::size_t n_levels = m.level_begin.size() - 1;
  // Feed the new op from the last level so its ASAP level is exactly the
  // appended level — every structural rule stays satisfied; only liveness
  // can object.
  const std::uint32_t operand = m.dst[m.level_begin[n_levels] - 1];
  const std::uint32_t fresh = static_cast<std::uint32_t>(m.n_slots);
  ++m.n_slots;
  m.tape.push_back(TapeOp{OpCode::kNot, fresh, operand, 0});
  m.op.push_back(OpCode::kNot);
  m.dst.push_back(fresh);
  m.a.push_back(operand);
  m.b.push_back(operand);
  m.level_begin.push_back(static_cast<std::uint32_t>(n) + 1);
  m.group_begin.push_back(static_cast<std::uint32_t>(n) + 1);
  m.level_group.push_back(static_cast<std::uint32_t>(m.group_begin.size()) - 1);
  m.run_begin.push_back(static_cast<std::uint32_t>(n) + 1);

  // A raw tape may legitimately carry dead ops...
  EXPECT_TRUE(verify::verify_exec_plan(m.view(), exec_options(false)).ok());
  // ...an optimized tape may not: DCE should have removed it.
  const Report report = verify::verify_exec_plan(m.view(), exec_options(true));
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(has_rule(report, Rule::kDeadCode)) << rules_of(report);
  EXPECT_TRUE(has_rule(report, Rule::kSlotLiveness)) << rules_of(report);
}

TEST(ExecPlanMutations, PlanDivergingFromTapeIsRejected) {
  MutableExec m = healthy_exec(true);
  // Flip one tape opcode between two binary forms; the plan no longer
  // executes the tape's op multiset, but both remain individually sound.
  for (TapeOp& t : m.tape) {
    if (t.op == OpCode::kAnd) {
      t.op = OpCode::kOr;
      break;
    }
    if (t.op == OpCode::kOr) {
      t.op = OpCode::kAnd;
      break;
    }
  }
  const Report report = verify::verify_exec_plan(m.view(), exec_options(true));
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(has_rule(report, Rule::kPermutation)) << rules_of(report);
}

// ---- EvalPlan mutations ---------------------------------------------------

TEST(EvalPlanMutations, SwappedDependentOpsAreRejected) {
  MutableEval m = healthy_eval();
  const auto [producer, consumer] = m.dependent_pair();
  m.swap_rows(producer, consumer);
  const Report report = verify::verify_eval_plan(m.view());
  EXPECT_TRUE(has_rule(report, Rule::kDefBeforeUse)) << rules_of(report);
}

TEST(EvalPlanMutations, DuplicatedSsaDefinitionIsRejected) {
  MutableEval m = healthy_eval();
  m.dst[m.dst.size() - 1] = m.dst[0];
  const Report report = verify::verify_eval_plan(m.view());
  EXPECT_TRUE(has_rule(report, Rule::kSsa)) << rules_of(report);
}

TEST(EvalPlanMutations, OperandAtUndefinedSlotIsRejected) {
  MutableEval m = healthy_eval();
  const std::uint32_t ghost = static_cast<std::uint32_t>(m.n_slots);
  ++m.n_slots;
  const std::size_t victim = m.op.size() - 1;
  m.a[victim] = ghost;
  if (!circuit::word_op_is_binary(m.op[victim])) m.b[victim] = ghost;
  const Report report = verify::verify_eval_plan(m.view());
  EXPECT_TRUE(has_rule(report, Rule::kDefBeforeUse)) << rules_of(report);
}

TEST(EvalPlanMutations, OperandOutOfBoundsIsRejected) {
  MutableEval m = healthy_eval();
  const std::size_t victim = m.op.size() / 2;
  m.a[victim] = static_cast<std::uint32_t>(m.n_slots) + 3;
  if (!circuit::word_op_is_binary(m.op[victim])) m.b[victim] = m.a[victim];
  const Report report = verify::verify_eval_plan(m.view());
  EXPECT_TRUE(has_rule(report, Rule::kSlotBounds)) << rules_of(report);
}

TEST(EvalPlanMutations, SplitRunInsideALevelIsRejected) {
  MutableEval m = healthy_eval();
  std::size_t run = m.run_begin.size();
  for (std::size_t r = 0; r + 1 < m.run_begin.size(); ++r) {
    if (m.run_begin[r + 1] - m.run_begin[r] >= 2) {
      run = r;
      break;
    }
  }
  ASSERT_LT(run, m.run_begin.size()) << "no run of length >= 2";
  m.run_begin.insert(m.run_begin.begin() + static_cast<std::ptrdiff_t>(run) + 1,
                     m.run_begin[run] + 1);
  const Report report = verify::verify_eval_plan(m.view());
  EXPECT_TRUE(has_rule(report, Rule::kRunPartition)) << rules_of(report);
}

TEST(EvalPlanMutations, BrokenUnaryMirrorIsRejected) {
  MutableEval m = healthy_eval();
  std::size_t victim = m.op.size();
  for (std::size_t k = 0; k < m.op.size(); ++k) {
    if (!circuit::word_op_is_binary(m.op[k])) {
      victim = k;
      break;
    }
  }
  ASSERT_LT(victim, m.op.size()) << "no unary op in plan";
  m.b[victim] = m.dst[victim];  // != a (SSA: dst is fresh, a is older)
  const Report report = verify::verify_eval_plan(m.view());
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(has_rule(report, Rule::kShape)) << rules_of(report);
}

}  // namespace
}  // namespace hts
