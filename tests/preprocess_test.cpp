// Tests for the CNF preprocessor: unit propagation, subsumption,
// self-subsuming resolution, bounded variable elimination, UNSAT detection,
// and — critically for samplers — exact model-count preservation plus
// model reconstruction back over eliminated variables.

#include <gtest/gtest.h>

#include <set>

#include "cnf/dimacs.hpp"
#include "solver/brute.hpp"
#include "solver/cdcl.hpp"
#include "solver/preprocess.hpp"
#include "util/rng.hpp"

namespace hts::solver {
namespace {

using cnf::Lit;
using cnf::Var;

TEST(Preprocess, UnitPropagationFixesChain) {
  auto f = cnf::parse_dimacs_string("p cnf 3 3\n1 0\n-1 2 0\n-2 3 0\n");
  Preprocessor pp;
  ASSERT_TRUE(pp.simplify(f));
  EXPECT_EQ(f.n_clauses(), 0u);  // everything propagated away
  EXPECT_EQ(pp.stats().units_fixed, 3u);
  cnf::Assignment model(3, 0);
  pp.extend_model(model);
  EXPECT_EQ(model, (cnf::Assignment{1, 1, 1}));
}

TEST(Preprocess, ConflictingUnitsUnsat) {
  auto f = cnf::parse_dimacs_string("p cnf 1 2\n1 0\n-1 0\n");
  Preprocessor pp;
  EXPECT_FALSE(pp.simplify(f));
}

TEST(Preprocess, UnitsExposeEmptyClause) {
  auto f = cnf::parse_dimacs_string("p cnf 2 3\n1 0\n2 0\n-1 -2 0\n");
  Preprocessor pp;
  EXPECT_FALSE(pp.simplify(f));
}

TEST(Preprocess, SubsumptionDropsSupersets) {
  auto f = cnf::parse_dimacs_string("p cnf 3 2\n1 2 0\n1 2 3 0\n");
  PreprocessConfig config;
  config.enable_bve = false;
  Preprocessor pp(config);
  ASSERT_TRUE(pp.simplify(f));
  EXPECT_EQ(f.n_clauses(), 1u);
  EXPECT_EQ(pp.stats().clauses_subsumed, 1u);
}

TEST(Preprocess, SelfSubsumingResolutionStrengthens) {
  // (a | b) and (a | ~b | c): the second strengthens to (a | c).
  auto f = cnf::parse_dimacs_string("p cnf 3 2\n1 2 0\n1 -2 3 0\n");
  PreprocessConfig config;
  config.enable_bve = false;
  Preprocessor pp(config);
  ASSERT_TRUE(pp.simplify(f));
  EXPECT_GE(pp.stats().clauses_strengthened, 1u);
  // Semantics preserved.
  const auto g = cnf::parse_dimacs_string("p cnf 3 2\n1 2 0\n1 -2 3 0\n");
  EXPECT_EQ(count_models(f), count_models(g));
}

TEST(Preprocess, BveEliminatesPureGateVariable) {
  // t <-> a & b (Tseitin AND), t used once: BVE removes t entirely.
  auto f = cnf::parse_dimacs_string(
      "p cnf 3 4\n3 -1 -2 0\n-3 1 0\n-3 2 0\n3 0\n");
  Preprocessor pp;
  ASSERT_TRUE(pp.simplify(f));
  // After units+BVE the formula collapses to a=1, b=1 (both fixed).
  cnf::Assignment model(3, 0);
  pp.extend_model(model);
  const auto original = cnf::parse_dimacs_string(
      "p cnf 3 4\n3 -1 -2 0\n-3 1 0\n-3 2 0\n3 0\n");
  EXPECT_TRUE(original.satisfied_by(model));
}

class PreprocessRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(PreprocessRoundTrip, ModelExtensionYieldsOriginalModels) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 48271 + 11);
  // Random small formulas: every model of the simplified formula must extend
  // to a model of the original, and the solution COUNT projected onto
  // surviving variables must be preserved (BVE never merges two distinct
  // projections).
  const Var n = 8 + static_cast<Var>(rng.next_below(4));
  cnf::Formula original(n);
  const std::size_t n_clauses = 2 * n + rng.next_below(n);
  for (std::size_t c = 0; c < n_clauses; ++c) {
    cnf::Clause clause;
    const std::size_t width = 2 + rng.next_below(2);
    while (clause.size() < width) {
      const Lit lit(static_cast<Var>(rng.next_below(n)), rng.next_bool());
      bool dup = false;
      for (const Lit l : clause) dup |= l.var() == lit.var();
      if (!dup) clause.push_back(lit);
    }
    original.add_clause(clause);
  }

  cnf::Formula simplified = original;
  Preprocessor pp;
  const bool sat_possible = pp.simplify(simplified);
  const std::uint64_t original_count = count_models(original);
  if (!sat_possible) {
    EXPECT_EQ(original_count, 0u) << "preprocessor claimed UNSAT wrongly";
    return;
  }

  // Every simplified model extends to an original model.
  std::size_t checked = 0;
  for_each_model(simplified, [&](const cnf::Assignment& model) {
    cnf::Assignment extended = model;
    pp.extend_model(extended);
    EXPECT_TRUE(original.satisfied_by(extended));
    return ++checked < 256;
  });
  if (original_count > 0) {
    EXPECT_GT(checked, 0u) << "SAT formula lost all models";
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, PreprocessRoundTrip, ::testing::Range(0, 25));

TEST(Preprocess, SolverAgreesAfterSimplify) {
  util::Rng rng(991);
  for (int trial = 0; trial < 15; ++trial) {
    const Var n = 14;
    cnf::Formula original(n);
    for (std::size_t c = 0; c < 60; ++c) {
      cnf::Clause clause;
      while (clause.size() < 3) {
        const Lit lit(static_cast<Var>(rng.next_below(n)), rng.next_bool());
        bool dup = false;
        for (const Lit l : clause) dup |= l.var() == lit.var();
        if (!dup) clause.push_back(lit);
      }
      original.add_clause(clause);
    }
    const bool brute_sat = count_models(original) > 0;
    cnf::Formula simplified = original;
    Preprocessor pp;
    if (!pp.simplify(simplified)) {
      EXPECT_FALSE(brute_sat) << trial;
      continue;
    }
    cnf::Assignment model;
    const Status status = solve_formula(simplified, &model);
    EXPECT_EQ(status == Status::kSat, brute_sat) << trial;
    if (status == Status::kSat) {
      model.resize(original.n_vars(), 0);
      pp.extend_model(model);
      EXPECT_TRUE(original.satisfied_by(model)) << trial;
    }
  }
}

TEST(Preprocess, TseitinChainsShrinkSubstantially) {
  // A buffer chain Tseitin CNF: BVE should chew through the chain vars.
  auto f = cnf::parse_dimacs_string(
      "p cnf 6 11\n-1 2 0\n1 -2 0\n-2 3 0\n2 -3 0\n-3 4 0\n3 -4 0\n"
      "-4 5 0\n4 -5 0\n-5 6 0\n5 -6 0\n6 0\n");
  Preprocessor pp;
  ASSERT_TRUE(pp.simplify(f));
  EXPECT_LE(f.n_clauses(), 2u);
  cnf::Assignment model(6, 0);
  pp.extend_model(model);
  EXPECT_EQ(model, (cnf::Assignment{1, 1, 1, 1, 1, 1}));
}

TEST(Preprocess, DisabledPassesRespectConfig) {
  auto f = cnf::parse_dimacs_string("p cnf 3 2\n1 2 0\n1 2 3 0\n");
  PreprocessConfig config;
  config.enable_subsumption = false;
  config.enable_bve = false;
  Preprocessor pp(config);
  ASSERT_TRUE(pp.simplify(f));
  EXPECT_EQ(f.n_clauses(), 2u);  // nothing removed
  EXPECT_EQ(pp.stats().clauses_subsumed, 0u);
}

}  // namespace
}  // namespace hts::solver
