// Tests for the tensor backend and the probabilistic engine: Table I
// forward/derivative semantics, finite-difference gradient checks on random
// circuits, loss descent, hardening, cone-only compilation, serial/parallel
// equivalence, and memory accounting.

#include <gtest/gtest.h>

#include <cmath>

#include "prob/compiled.hpp"
#include "prob/engine.hpp"
#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace hts::prob {
namespace {

using circuit::Circuit;
using circuit::GateType;
using circuit::SignalId;

// --- tensor backend ------------------------------------------------------------

TEST(Tensor, SigmoidValues) {
  const float in[3] = {0.0f, 10.0f, -10.0f};
  float out[3];
  tensor::sigmoid(tensor::Policy::kSerial, in, out, 3);
  EXPECT_NEAR(out[0], 0.5f, 1e-6f);
  EXPECT_GT(out[1], 0.9999f);
  EXPECT_LT(out[2], 0.0001f);
}

TEST(Tensor, SigmoidBackwardChain) {
  const float grad[1] = {2.0f};
  const float p[1] = {0.25f};
  float out[1];
  tensor::sigmoid_backward(tensor::Policy::kSerial, grad, p, out, 1);
  EXPECT_NEAR(out[0], 2.0f * 0.25f * 0.75f, 1e-6f);
}

TEST(Tensor, SgdStep) {
  float v[2] = {1.0f, -1.0f};
  const float g[2] = {0.5f, -0.5f};
  tensor::sgd_step(tensor::Policy::kSerial, v, g, 10.0f, 2);
  EXPECT_FLOAT_EQ(v[0], -4.0f);
  EXPECT_FLOAT_EQ(v[1], 4.0f);
}

TEST(Tensor, PoliciesAgree) {
  util::Rng rng(5);
  constexpr std::size_t kN = 10000;
  std::vector<float> in(kN), serial(kN), parallel(kN);
  for (auto& x : in) x = static_cast<float>(rng.next_gaussian());
  tensor::sigmoid(tensor::Policy::kSerial, in.data(), serial.data(), kN);
  tensor::sigmoid(tensor::Policy::kDataParallel, in.data(), parallel.data(), kN);
  for (std::size_t i = 0; i < kN; ++i) ASSERT_FLOAT_EQ(serial[i], parallel[i]);
}

TEST(Tensor, BufferTracksBytes) {
  tensor::reset_peak_bytes();
  const std::int64_t before = tensor::live_bytes();
  {
    tensor::Buffer buffer(1024);
    EXPECT_GE(tensor::live_bytes() - before,
              static_cast<std::int64_t>(1024 * sizeof(float)));
  }
  EXPECT_EQ(tensor::live_bytes(), before);
  EXPECT_GE(tensor::peak_bytes() - before,
            static_cast<std::int64_t>(1024 * sizeof(float)));
}

// --- compilation -----------------------------------------------------------------

/// Raw (unoptimized) compilation, for asserting the gate-per-gate tape shape.
constexpr CompiledCircuit::Options kRaw{/*cone_only=*/false, /*optimize=*/false};

TEST(Compiled, BinarizesWideGates) {
  Circuit c;
  std::vector<SignalId> ins;
  for (int i = 0; i < 4; ++i) ins.push_back(c.add_input());
  c.add_output(c.add_gate(GateType::kAnd, ins), true);
  const CompiledCircuit compiled(c, kRaw);
  // 4-input AND -> 3 binary AND ops.
  EXPECT_EQ(compiled.n_ops(), 3u);
  ASSERT_EQ(compiled.outputs().size(), 1u);
  EXPECT_FLOAT_EQ(compiled.outputs()[0].target, 1.0f);
}

TEST(Compiled, InvertedGatesAppendNot) {
  Circuit c;
  const SignalId a = c.add_input();
  const SignalId b = c.add_input();
  c.add_output(c.add_gate(GateType::kNor, {a, b}), false);
  const CompiledCircuit raw(c, kRaw);
  EXPECT_EQ(raw.n_ops(), 2u);  // OR + NOT
  EXPECT_FLOAT_EQ(raw.outputs()[0].target, 0.0f);
}

TEST(Compiled, ConeOnlySkipsUnconstrainedLogic) {
  Circuit c;
  const SignalId a = c.add_input();
  const SignalId b = c.add_input();
  (void)c.add_gate(GateType::kNot, {a});  // unconstrained cone
  const SignalId g = c.add_gate(GateType::kNot, {b});
  c.add_output(g, true);
  const CompiledCircuit full(c, kRaw);
  const CompiledCircuit cone(c, CompiledCircuit::Options{true, false});
  EXPECT_EQ(full.n_ops(), 2u);
  EXPECT_EQ(cone.n_ops(), 1u);
  EXPECT_EQ(cone.input_slot()[0], kNoSlot);  // input a outside the cone
  EXPECT_NE(cone.input_slot()[1], kNoSlot);
}

TEST(Compiled, ConstantsGetFixedSlots) {
  Circuit c;
  const SignalId k1 = c.add_const(true);
  c.add_output(k1, true);
  const CompiledCircuit compiled(c);
  ASSERT_EQ(compiled.const_slots().size(), 1u);
  EXPECT_FLOAT_EQ(compiled.const_slots()[0].value, 1.0f);
}

// --- tape optimizer --------------------------------------------------------------

TEST(Optimizer, FusesInvertedGatesIntoOneOp) {
  for (const GateType type : {GateType::kNand, GateType::kNor, GateType::kXnor}) {
    Circuit c;
    const SignalId a = c.add_input();
    const SignalId b = c.add_input();
    const SignalId g = c.add_gate(type, {a, b});
    c.add_output(g, true);
    const CompiledCircuit raw(c, kRaw);
    const CompiledCircuit opt(c);
    EXPECT_EQ(raw.n_ops(), 2u);
    ASSERT_EQ(opt.n_ops(), 1u);
    const OpCode fused = opt.tape()[0].op;
    EXPECT_TRUE(fused == OpCode::kAndNot || fused == OpCode::kOrNot ||
                fused == OpCode::kXnor);
    EXPECT_EQ(opt.opt_stats().nots_fused, 1u);
    EXPECT_NE(opt.signal_slot(g), kNoSlot);  // gate output stays addressable
  }
}

TEST(Optimizer, CopyPropagationCollapsesBufferChains) {
  // in -> buf -> buf -> buf -> NOT -> output: the copies vanish and the
  // buffered signals alias the source slot.
  Circuit c;
  const SignalId in = c.add_input();
  SignalId s = in;
  for (int i = 0; i < 3; ++i) s = c.add_gate(GateType::kBuf, {s});
  const SignalId n = c.add_gate(GateType::kNot, {s});
  c.add_output(n, true);
  const CompiledCircuit raw(c, kRaw);
  const CompiledCircuit opt(c);
  EXPECT_EQ(raw.n_ops(), 4u);
  EXPECT_EQ(opt.n_ops(), 1u);
  EXPECT_EQ(opt.opt_stats().copies_propagated, 3u);
  // The buffered signal aliases the input's slot.
  EXPECT_EQ(opt.signal_slot(s), opt.input_slot()[0]);
  EXPECT_LT(opt.n_slots(), raw.n_slots());
}

TEST(Optimizer, DeadLogicEliminated) {
  Circuit c;
  const SignalId a = c.add_input();
  const SignalId b = c.add_input();
  (void)c.add_gate(GateType::kAnd, {a, b});  // feeds nothing
  c.add_output(c.add_gate(GateType::kOr, {a, b}), true);
  const CompiledCircuit opt(c);
  EXPECT_EQ(opt.n_ops(), 1u);
  EXPECT_EQ(opt.tape()[0].op, OpCode::kOr);
  EXPECT_EQ(opt.opt_stats().ops_dead, 1u);
}

TEST(Optimizer, ConstantAndFoldsToAlias) {
  // AND(x, 1) == x exactly, so the op disappears and the output reads the
  // input slot directly.
  Circuit c;
  const SignalId x = c.add_input();
  const SignalId k1 = c.add_const(true);
  const SignalId g = c.add_gate(GateType::kAnd, {x, k1});
  c.add_output(g, true);
  const CompiledCircuit opt(c);
  EXPECT_EQ(opt.n_ops(), 0u);
  ASSERT_EQ(opt.outputs().size(), 1u);
  EXPECT_EQ(static_cast<std::int32_t>(opt.outputs()[0].slot), opt.input_slot()[0]);
  // The unused constant slot is renumbered away.
  EXPECT_TRUE(opt.const_slots().empty());
}

TEST(Optimizer, ConstantNotFoldsToConst) {
  // NOT(const1) -> const 0; output becomes a constant slot with no tape ops.
  Circuit c;
  const SignalId k1 = c.add_const(true);
  const SignalId g = c.add_gate(GateType::kNot, {k1});
  c.add_output(g, false);
  const CompiledCircuit opt(c);
  EXPECT_EQ(opt.n_ops(), 0u);
  ASSERT_EQ(opt.const_slots().size(), 1u);
  EXPECT_FLOAT_EQ(opt.const_slots()[0].value, 0.0f);
  EXPECT_EQ(opt.outputs()[0].slot, opt.const_slots()[0].slot);
}

TEST(Optimizer, StatsTrackTapeAndSlotReduction) {
  // NAND chain with buffers: every optimization contributes.
  Circuit c;
  const SignalId a = c.add_input();
  const SignalId b = c.add_input();
  const SignalId n1 = c.add_gate(GateType::kNand, {a, b});
  const SignalId buf = c.add_gate(GateType::kBuf, {n1});
  const SignalId n2 = c.add_gate(GateType::kNand, {buf, a});
  c.add_output(n2, true);
  const CompiledCircuit opt(c);
  const OptStats& stats = opt.opt_stats();
  EXPECT_EQ(stats.ops_before, 5u);  // 2x(AND+NOT) + copy
  EXPECT_EQ(stats.ops_after, 2u);   // 2x kAndNot
  EXPECT_EQ(stats.copies_propagated, 1u);
  EXPECT_EQ(stats.nots_fused, 2u);
  EXPECT_LT(stats.slots_after, stats.slots_before);
  EXPECT_EQ(opt.n_ops(), stats.ops_after);
  EXPECT_EQ(opt.n_slots(), stats.slots_after);
}

TEST(Optimizer, OptimizedForwardMatchesRawBitExactly) {
  // Mixed circuit exercising every rewrite; with the exact sigmoid the
  // optimized tape must reproduce raw output activations bit for bit.
  Circuit c;
  const SignalId a = c.add_input();
  const SignalId b = c.add_input();
  const SignalId d = c.add_input();
  const SignalId nand1 = c.add_gate(GateType::kNand, {a, b});
  const SignalId buf = c.add_gate(GateType::kBuf, {nand1});
  const SignalId x1 = c.add_gate(GateType::kXnor, {buf, d});
  const SignalId k1 = c.add_const(true);
  const SignalId and1 = c.add_gate(GateType::kAnd, {x1, k1});
  (void)c.add_gate(GateType::kOr, {a, d});  // dead
  c.add_output(and1, true);
  c.add_output(c.add_gate(GateType::kNor, {x1, b}), false);

  const CompiledCircuit raw(c, kRaw);
  const CompiledCircuit opt(c);
  ASSERT_LT(opt.n_ops(), raw.n_ops());

  auto make_engine = [](const CompiledCircuit& compiled) {
    Engine::Config config;
    config.batch = 192;
    config.policy = tensor::Policy::kSerial;
    config.fast_sigmoid = false;
    return Engine(compiled, config);
  };
  Engine eng_raw = make_engine(raw);
  Engine eng_opt = make_engine(opt);
  util::Rng rng_a(2024);
  util::Rng rng_b(2024);
  eng_raw.randomize(rng_a);
  eng_opt.randomize(rng_b);
  eng_raw.forward_only();
  eng_opt.forward_only();
  ASSERT_EQ(raw.outputs().size(), opt.outputs().size());
  for (std::size_t k = 0; k < raw.outputs().size(); ++k) {
    for (std::size_t r = 0; r < 192; ++r) {
      const float y_raw = eng_raw.activation(raw.outputs()[k].slot, r);
      const float y_opt = eng_opt.activation(opt.outputs()[k].slot, r);
      ASSERT_EQ(y_raw, y_opt) << "output " << k << " row " << r;
    }
  }
  EXPECT_EQ(eng_raw.last_loss(), eng_opt.last_loss());
}

// --- engine forward semantics (Table I) ---------------------------------------------

class TableIFixture : public ::testing::Test {
 protected:
  /// Builds a 2-input gate circuit, sets P1/P2 via logit, runs forward, and
  /// returns the output activation.
  float forward_gate(GateType type, float p1, float p2) {
    Circuit c;
    const SignalId a = c.add_input();
    const SignalId b = c.add_input();
    const SignalId g = c.add_gate(type, {a, b});
    c.add_output(g, true);
    const CompiledCircuit compiled(c);
    Engine::Config config;
    config.batch = 1;
    config.policy = tensor::Policy::kSerial;
    config.compute_loss = true;
    Engine engine(compiled, config);
    engine.set_v(0, 0, logit(p1));
    engine.set_v(1, 0, logit(p2));
    engine.forward_only();
    return engine.activation(
        static_cast<std::uint32_t>(compiled.signal_slot(g)), 0);
  }

  static float logit(float p) { return std::log(p / (1.0f - p)); }
};

TEST_F(TableIFixture, AndIsProduct) {
  EXPECT_NEAR(forward_gate(GateType::kAnd, 0.3f, 0.7f), 0.21f, 1e-4f);
}

TEST_F(TableIFixture, OrIsInclusionExclusion) {
  EXPECT_NEAR(forward_gate(GateType::kOr, 0.3f, 0.7f), 1.0f - 0.7f * 0.3f, 1e-4f);
}

TEST_F(TableIFixture, XorIsDisagreementProbability) {
  EXPECT_NEAR(forward_gate(GateType::kXor, 0.3f, 0.7f),
              0.3f * 0.3f + 0.7f * 0.7f, 1e-4f);
}

TEST_F(TableIFixture, XnorComplementsXor) {
  EXPECT_NEAR(forward_gate(GateType::kXnor, 0.3f, 0.7f),
              1.0f - (0.3f * 0.3f + 0.7f * 0.7f), 1e-4f);
}

TEST_F(TableIFixture, NandNorComplement) {
  EXPECT_NEAR(forward_gate(GateType::kNand, 0.5f, 0.5f), 0.75f, 1e-4f);
  EXPECT_NEAR(forward_gate(GateType::kNor, 0.5f, 0.5f), 0.25f, 1e-4f);
}

// --- gradient check ------------------------------------------------------------------

/// Builds a random circuit, computes dL/dV analytically via one
/// run_iteration with lr chosen to expose the gradient, and compares with a
/// central finite difference of the loss.
class GradientCheck : public ::testing::TestWithParam<int> {};

TEST_P(GradientCheck, MatchesFiniteDifferences) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 31337 + 3);
  Circuit c;
  const std::size_t n_in = 3 + rng.next_below(3);
  for (std::size_t i = 0; i < n_in; ++i) c.add_input();
  for (int g = 0; g < 8; ++g) {
    const auto pick = [&] {
      return static_cast<SignalId>(rng.next_below(c.n_signals()));
    };
    const SignalId a = pick();
    SignalId b = pick();
    switch (rng.next_below(4)) {
      case 0:
        c.add_gate(GateType::kNot, {a});
        break;
      case 1:
        if (a == b) b = pick();
        c.add_gate(a == b ? GateType::kNot : GateType::kAnd,
                   a == b ? std::vector<SignalId>{a} : std::vector<SignalId>{a, b});
        break;
      case 2:
        if (a == b) b = pick();
        c.add_gate(a == b ? GateType::kBuf : GateType::kOr,
                   a == b ? std::vector<SignalId>{a} : std::vector<SignalId>{a, b});
        break;
      default:
        if (a == b) b = pick();
        c.add_gate(a == b ? GateType::kNot : GateType::kXor,
                   a == b ? std::vector<SignalId>{a} : std::vector<SignalId>{a, b});
        break;
    }
  }
  c.add_output(static_cast<SignalId>(c.n_signals() - 1), true);
  c.add_output(static_cast<SignalId>(c.n_signals() - 2), false);

  const CompiledCircuit compiled(c);
  Engine::Config config;
  config.batch = 1;
  config.policy = tensor::Policy::kSerial;
  config.compute_loss = true;
  config.learning_rate = 1.0f;

  // Analytic gradient: dL/dV = (V_before - V_after) / lr.
  Engine engine(compiled, config);
  util::Rng init_rng(GetParam());
  engine.randomize(init_rng);
  std::vector<float> v_before(n_in);
  for (std::size_t i = 0; i < n_in; ++i) v_before[i] = engine.v_value(i, 0);
  engine.run_iteration();
  std::vector<float> analytic(n_in);
  for (std::size_t i = 0; i < n_in; ++i) {
    analytic[i] = (v_before[i] - engine.v_value(i, 0)) / config.learning_rate;
  }

  // Finite differences on a fresh engine with the same init.
  Engine probe(compiled, config);
  constexpr float kEps = 1e-3f;
  for (std::size_t i = 0; i < n_in; ++i) {
    auto loss_at = [&](float delta) {
      for (std::size_t j = 0; j < n_in; ++j) {
        probe.set_v(j, 0, v_before[j] + (i == j ? delta : 0.0f));
      }
      probe.forward_only();
      return probe.last_loss();
    };
    const double numeric = (loss_at(kEps) - loss_at(-kEps)) / (2.0 * kEps);
    EXPECT_NEAR(analytic[i], numeric, 5e-3)
        << "input " << i << " seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(RandomCircuits, GradientCheck, ::testing::Range(0, 20));

// --- learning behaviour ---------------------------------------------------------------

TEST(Engine, LossDecreasesOnConjunction) {
  // Single output AND(a, b) forced to 1: GD pushes both inputs up.  Rows
  // whose initialization saturates the sigmoid on the wrong side descend
  // slowly (vanishing gradient) — the sampler handles those by
  // re-randomizing each round — so the assertion is monotone descent plus a
  // healthy fraction of converged rows, not full convergence.
  Circuit c;
  const SignalId a = c.add_input();
  const SignalId b = c.add_input();
  c.add_output(c.add_gate(GateType::kAnd, {a, b}), true);
  const CompiledCircuit compiled(c);
  Engine::Config config;
  config.batch = 64;
  config.learning_rate = 10.0f;
  config.init_std = 1.0f;  // mild init: fewer saturated rows
  config.policy = tensor::Policy::kSerial;
  config.compute_loss = true;
  Engine engine(compiled, config);
  util::Rng rng(1);
  engine.randomize(rng);
  engine.forward_only();
  const double initial = engine.last_loss();
  for (int iter = 0; iter < 10; ++iter) engine.run_iteration();
  engine.forward_only();
  EXPECT_LT(engine.last_loss(), initial * 0.75);
  // A solid majority of rows must harden to the (1, 1) solution.
  std::vector<std::uint64_t> packed;
  engine.harden(packed);
  const std::uint64_t both = packed[0] & packed[1];
  EXPECT_GT(std::popcount(both), 32);
}

TEST(Engine, SerialAndParallelIterationsMatch) {
  Circuit c;
  const SignalId a = c.add_input();
  const SignalId b = c.add_input();
  const SignalId x = c.add_gate(GateType::kXor, {a, b});
  c.add_output(x, true);
  const CompiledCircuit compiled(c);

  auto run = [&](tensor::Policy policy) {
    Engine::Config config;
    config.batch = 257;  // odd size: exercises partial chunks
    config.policy = policy;
    Engine engine(compiled, config);
    util::Rng rng(99);
    engine.randomize(rng);
    for (int i = 0; i < 3; ++i) engine.run_iteration();
    std::vector<float> vs;
    for (std::size_t r = 0; r < 257; ++r) {
      vs.push_back(engine.v_value(0, r));
      vs.push_back(engine.v_value(1, r));
    }
    return vs;
  };
  const auto serial = run(tensor::Policy::kSerial);
  const auto parallel = run(tensor::Policy::kDataParallel);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    ASSERT_FLOAT_EQ(serial[i], parallel[i]) << i;
  }
}

TEST(Engine, HardenPacksVSign) {
  Circuit c;
  (void)c.add_input();
  const CompiledCircuit compiled(c);
  Engine::Config config;
  config.batch = 70;  // crosses a word boundary
  config.policy = tensor::Policy::kSerial;
  Engine engine(compiled, config);
  for (std::size_t r = 0; r < 70; ++r) {
    engine.set_v(0, r, (r % 3 == 0) ? 1.5f : -1.5f);
  }
  std::vector<std::uint64_t> packed;
  engine.harden(packed);
  ASSERT_EQ(packed.size(), engine.n_words());
  for (std::size_t r = 0; r < 70; ++r) {
    EXPECT_EQ((packed[r >> 6] >> (r & 63)) & 1, (r % 3 == 0) ? 1u : 0u) << r;
  }
}

TEST(Engine, HardenMasksPaddingRows) {
  // 70 rows leave 58 padding rows in the second tile whose V is randomized
  // but must never leak into the packed words.
  Circuit c;
  (void)c.add_input();
  const CompiledCircuit compiled(c);
  Engine::Config config;
  config.batch = 70;
  config.policy = tensor::Policy::kSerial;
  Engine engine(compiled, config);
  util::Rng rng(11);
  engine.randomize(rng);  // padding rows get (mostly) nonzero V too
  std::vector<std::uint64_t> packed;
  engine.harden(packed);
  ASSERT_EQ(packed.size(), 2u);
  EXPECT_EQ(packed[1] & ~((1ULL << 6) - 1), 0u) << "padding bits leaked";
}

TEST(Engine, RerandomizeRowsOnlyTouchesMaskedRows) {
  Circuit c;
  (void)c.add_input();
  (void)c.add_input();
  const CompiledCircuit compiled(c);
  Engine::Config config;
  config.batch = 130;  // three tiles
  config.policy = tensor::Policy::kSerial;
  Engine engine(compiled, config);
  for (std::size_t i = 0; i < 2; ++i) {
    for (std::size_t r = 0; r < 130; ++r) engine.set_v(i, r, 5.0f);
  }
  std::vector<std::uint64_t> mask(engine.n_words(), 0);
  mask[0] = (1ULL << 3) | (1ULL << 40);
  mask[2] = 1ULL << 1;  // row 129
  util::Rng rng(3);
  EXPECT_EQ(engine.rerandomize_rows(mask, rng), 3u);
  for (std::size_t i = 0; i < 2; ++i) {
    for (std::size_t r = 0; r < 130; ++r) {
      const bool redrawn = r == 3 || r == 40 || r == 129;
      if (redrawn) {
        EXPECT_NE(engine.v_value(i, r), 5.0f) << "input " << i << " row " << r;
      } else {
        EXPECT_EQ(engine.v_value(i, r), 5.0f) << "input " << i << " row " << r;
      }
    }
  }
}

TEST(Engine, LossIdenticalAcrossPolicies) {
  // The per-tile loss scratch is reduced in tile order, so the float sum —
  // not just its rounded value — is policy-independent.
  Circuit c;
  const SignalId a = c.add_input();
  const SignalId b = c.add_input();
  c.add_output(c.add_gate(GateType::kXor, {a, b}), true);
  const CompiledCircuit compiled(c);
  auto loss_with = [&](tensor::Policy policy) {
    Engine::Config config;
    config.batch = 1000;  // 16 tiles, last one partial
    config.policy = policy;
    Engine engine(compiled, config);
    util::Rng rng(21);
    engine.randomize(rng);
    engine.forward_only();
    return engine.last_loss();
  };
  EXPECT_EQ(loss_with(tensor::Policy::kSerial),
            loss_with(tensor::Policy::kDataParallel));
}

TEST(Engine, FastSigmoidEmbedMatchesExactWithin1e5) {
  Circuit c;
  const SignalId a = c.add_input();
  const SignalId b = c.add_input();
  const SignalId g = c.add_gate(GateType::kXor, {a, b});
  c.add_output(g, true);
  const CompiledCircuit compiled(c);
  auto run = [&](bool fast) {
    Engine::Config config;
    config.batch = 256;
    config.policy = tensor::Policy::kSerial;
    config.fast_sigmoid = fast;
    Engine engine(compiled, config);
    util::Rng rng(77);
    engine.randomize(rng);
    engine.forward_only();
    std::vector<float> ys;
    for (std::size_t r = 0; r < 256; ++r) {
      ys.push_back(engine.activation(
          static_cast<std::uint32_t>(compiled.signal_slot(g)), r));
    }
    return ys;
  };
  const auto exact = run(false);
  const auto fast = run(true);
  for (std::size_t r = 0; r < 256; ++r) {
    EXPECT_NEAR(exact[r], fast[r], 1e-5f) << r;
  }
}

TEST(Engine, MemoryScalesWithBatch) {
  Circuit c;
  const SignalId a = c.add_input();
  const SignalId b = c.add_input();
  c.add_output(c.add_gate(GateType::kAnd, {a, b}), true);
  const CompiledCircuit compiled(c);
  Engine::Config small;
  small.batch = 128;
  Engine::Config big;
  big.batch = 1024;
  const Engine engine_small(compiled, small);
  const Engine engine_big(compiled, big);
  const double ratio = static_cast<double>(engine_big.memory_bytes()) /
                       static_cast<double>(engine_small.memory_bytes());
  EXPECT_NEAR(ratio, 8.0, 0.2);  // linear in batch
}

TEST(Engine, UnconstrainedInputsKeepRandomInit) {
  // Input `a` feeds nothing; its V must not move under GD.
  Circuit c;
  const SignalId a = c.add_input();
  const SignalId b = c.add_input();
  c.add_output(c.add_gate(GateType::kNot, {b}), true);
  const CompiledCircuit compiled(c);
  Engine::Config config;
  config.batch = 8;
  config.policy = tensor::Policy::kSerial;
  Engine engine(compiled, config);
  util::Rng rng(7);
  engine.randomize(rng);
  std::vector<float> before;
  for (std::size_t r = 0; r < 8; ++r) before.push_back(engine.v_value(0, r));
  for (int i = 0; i < 3; ++i) engine.run_iteration();
  for (std::size_t r = 0; r < 8; ++r) {
    EXPECT_FLOAT_EQ(engine.v_value(0, r), before[r]) << r;
  }
  (void)a;
}

}  // namespace
}  // namespace hts::prob
