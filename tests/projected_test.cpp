// Projected sampling tests: sampling-set-aware dedup (bank keys on the
// projection), golden determinism of projected streams across kernel
// policies and fleet sizes, amplifier interplay, per-variable loss weights,
// the diversity restart objective, and the end-to-end service contract that
// a 'c ind'-scoped job never delivers the same projection twice.

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "analysis/uniformity.hpp"
#include "benchgen/families.hpp"
#include "cnf/dimacs.hpp"
#include "core/gradient_sampler.hpp"
#include "core/unique_bank.hpp"
#include "service/server.hpp"

namespace hts {
namespace {

/// (x1|x2) & (x3|x4) with 'c ind 1 2': 9 full models project onto 3
/// distinct classes over {x1, x2}.
cnf::Formula projected_or_formula() {
  return cnf::parse_dimacs_string("c ind 1 2 0\np cnf 4 2\n1 2 0\n3 4 0\n");
}

/// formula_a from the service tests plus a 'c ind 1 3 5' set: constrained
/// core (x1|x2)(x3|x4)(~x1|~x3) over 7 vars, projected onto {x1, x3, x5}.
cnf::Formula projected_service_formula() {
  return cnf::parse_dimacs_string(
      "c ind 1 3 5 0\np cnf 7 3\n1 2 0\n3 4 0\n-1 -3 0\n");
}

std::vector<std::uint8_t> project(const cnf::Assignment& draw,
                                  const std::vector<cnf::Var>& set) {
  std::vector<std::uint8_t> key;
  key.reserve(set.size());
  for (const cnf::Var v : set) key.push_back(draw[v]);
  return key;
}

void expect_distinct_projections(const std::vector<cnf::Assignment>& solutions,
                                 const std::vector<cnf::Var>& set) {
  std::set<std::vector<std::uint8_t>> seen;
  for (const cnf::Assignment& solution : solutions) {
    EXPECT_TRUE(seen.insert(project(solution, set)).second)
        << "duplicate projection delivered";
  }
}

sampler::RunOptions golden_options(std::uint64_t seed = 0x90dd) {
  sampler::RunOptions options;
  options.min_solutions = 0;  // only the round budget stops the run
  options.budget_ms = -1.0;
  options.store_limit = 1 << 20;
  options.verify_against_cnf = true;
  options.seed = seed;
  return options;
}

// --- projected dedup counts classes, not witnesses ---------------------------

TEST(ProjectedDedup, BankKeysOnTheProjection) {
  const cnf::Formula formula = projected_or_formula();
  sampler::GradientConfig config;
  config.batch = 256;
  config.max_rounds = 4;
  sampler::GradientSampler sampler(config);
  const sampler::RunResult result = sampler.run(formula, golden_options());
  EXPECT_EQ(result.n_invalid, 0u);
  // Exactly one full witness per projected class, never more.
  EXPECT_EQ(result.n_unique, 3u);
  ASSERT_EQ(result.solutions.size(), 3u);
  for (const cnf::Assignment& solution : result.solutions) {
    EXPECT_TRUE(formula.satisfied_by(solution));
  }
  expect_distinct_projections(result.solutions, formula.sampling_set());
}

TEST(ProjectedDedup, AnalysisAgreesOnTheProjectedModelCount) {
  const cnf::Formula formula = projected_or_formula();
  const analysis::UniformityReport report =
      analysis::analyze_projected_uniformity(formula, formula.sampling_set(), {});
  EXPECT_EQ(report.n_models, 3u);
  // Empty set = identity projection = the plain full-space count.
  const analysis::UniformityReport full =
      analysis::analyze_projected_uniformity(formula, {}, {});
  EXPECT_EQ(full.n_models, 9u);
  EXPECT_EQ(analysis::analyze_uniformity(formula, {}).n_models, 9u);
}

TEST(ProjectedDedup, TurningTheKnobOffRestoresFullAssignmentDedup) {
  const cnf::Formula formula = projected_or_formula();
  sampler::GradientConfig config;
  config.batch = 256;
  config.max_rounds = 6;
  config.projected_dedup = false;
  sampler::GradientSampler sampler(config);
  sampler::RunOptions options = golden_options();
  options.min_solutions = 9;
  options.budget_ms = 10000.0;
  const sampler::RunResult result = sampler.run(formula, options);
  // Full-assignment dedup can (and here does) bank more witnesses than
  // there are projected classes.
  EXPECT_GT(result.n_unique, 3u);
}

// --- golden determinism of projected streams ---------------------------------

TEST(ProjectedGolden, PoliciesProduceBitIdenticalProjectedStreams) {
  benchgen::GenOptions gen;
  gen.scale = 0.05;
  for (const auto& name : {"or-50-10-7-UC-10", "75-10-1-q"}) {
    const auto instance = benchgen::make_instance(name, gen);
    cnf::Formula formula = instance.formula;
    // Project onto the first 8 variables.
    std::vector<cnf::Var> set;
    for (cnf::Var v = 0; v < 8 && v < formula.n_vars(); ++v) set.push_back(v);
    formula.set_sampling_set(set);

    constexpr tensor::Policy kPolicies[] = {tensor::Policy::kSerial,
                                            tensor::Policy::kDataParallel,
                                            tensor::Policy::kLevelParallel};
    bool have_reference = false;
    sampler::RunResult reference;
    for (const tensor::Policy policy : kPolicies) {
      sampler::GradientConfig config;
      config.batch = 256;
      config.policy = policy;
      config.max_rounds = 2;
      sampler::GradientSampler sampler(config);
      const sampler::RunResult result = sampler.run(formula, golden_options());
      EXPECT_EQ(result.n_invalid, 0u) << name;
      expect_distinct_projections(result.solutions, set);
      if (!have_reference) {
        have_reference = true;
        reference = result;
        EXPECT_GT(reference.n_unique, 0u) << name;
        continue;
      }
      EXPECT_EQ(result.n_unique, reference.n_unique)
          << name << " policy " << tensor::policy_name(policy);
      ASSERT_EQ(result.solutions, reference.solutions)
          << name << " policy " << tensor::policy_name(policy);
    }
  }
}

TEST(ProjectedGolden, EveryFleetSizeSaturatesTheProjectedSpaceWithoutDuplicates) {
  // Racing round-parallel workers do not promise a bit-identical stream
  // (only the service's time-sliced rounds do — see ProjectedService below);
  // what every fleet size must agree on is the projected *set* semantics:
  // saturate to exactly the 6 reachable classes, never bank a duplicate.
  const cnf::Formula formula = projected_service_formula();
  for (const std::size_t n_workers : {1u, 2u, 4u}) {
    sampler::GradientConfig config;
    config.batch = 256;
    config.policy = tensor::Policy::kSerial;
    config.max_rounds = 8;
    config.n_workers = n_workers;
    sampler::GradientSampler sampler(config);
    sampler::RunOptions options = golden_options();
    options.min_solutions = 6;
    options.budget_ms = 10000.0;
    const sampler::RunResult result = sampler.run(formula, options);
    EXPECT_EQ(result.n_unique, 6u) << n_workers << " workers";
    ASSERT_EQ(result.solutions.size(), 6u) << n_workers << " workers";
    for (const cnf::Assignment& solution : result.solutions) {
      EXPECT_TRUE(formula.satisfied_by(solution));
    }
    expect_distinct_projections(result.solutions, formula.sampling_set());
  }
}

TEST(ProjectedGolden, AmplifierRespectsProjectedDedup) {
  const cnf::Formula formula = projected_service_formula();
  sampler::GradientConfig config;
  config.batch = 256;
  config.max_rounds = 2;
  config.amplify.enabled = true;
  config.amplify.max_pairs_per_base = 0;
  sampler::GradientSampler a(config);
  sampler::GradientSampler b(config);
  const sampler::RunResult ra = a.run(formula, golden_options());
  const sampler::RunResult rb = b.run(formula, golden_options());
  // Amplified uniques obey the same projected key: content, order, and no
  // duplicate classes — and reruns are bit-identical.
  expect_distinct_projections(ra.solutions, formula.sampling_set());
  EXPECT_LE(ra.n_unique, 8u);  // at most 2^3 projected classes exist
  ASSERT_EQ(ra.solutions, rb.solutions);
  EXPECT_EQ(ra.n_unique, rb.n_unique);
}

TEST(ProjectedGolden, NoSamplingSetRunsAreUnaffectedByTheKnobs) {
  // Without a set, projected_dedup/diversity_restart must be inert: the
  // stream is bit-identical to a run with both turned off.
  benchgen::GenOptions gen;
  gen.scale = 0.05;
  const auto instance = benchgen::make_instance("75-10-1-q", gen);
  auto run_with = [&](bool projected, bool diversity) {
    sampler::GradientConfig config;
    config.batch = 256;
    config.max_rounds = 2;
    config.projected_dedup = projected;
    config.diversity_restart = diversity;
    sampler::GradientSampler sampler(config);
    return sampler.run(instance.formula, golden_options());
  };
  const sampler::RunResult on = run_with(true, true);
  const sampler::RunResult off = run_with(false, false);
  EXPECT_EQ(on.n_unique, off.n_unique);
  ASSERT_EQ(on.solutions, off.solutions);
}

// --- per-variable loss weights ----------------------------------------------

TEST(WeightedLoss, LiteralWeightSteersAFreeVariable) {
  // x3 is free (appears in no clause): plain descent never moves it, so a
  // positive-literal weight is the only force on it.
  const cnf::Formula formula = cnf::parse_dimacs_string("p cnf 3 1\n1 2 0\n");
  sampler::GradientConfig config;
  config.batch = 512;
  config.max_rounds = 1;
  config.lit_weights.push_back({/*var=*/2, /*negated=*/false, /*weight=*/4.0f});
  sampler::GradientSampler sampler(config);
  sampler::RunOptions options = golden_options();
  options.store_all_draws = true;
  const sampler::RunResult result = sampler.run(formula, options);
  ASSERT_GT(result.solutions.size(), 100u);
  EXPECT_GT(sampler.extras().weighted_inputs, 0u);
  std::size_t x3_true = 0;
  for (const cnf::Assignment& draw : result.solutions) {
    if (draw[2] != 0) ++x3_true;
  }
  const double fraction = static_cast<double>(x3_true) /
                          static_cast<double>(result.solutions.size());
  EXPECT_GE(fraction, 0.8) << "weight 4 on x3 should dominate its random init";
}

TEST(WeightedLoss, NegatedLiteralWeightSteersTheOtherWay) {
  const cnf::Formula formula = cnf::parse_dimacs_string("p cnf 3 1\n1 2 0\n");
  sampler::GradientConfig config;
  config.batch = 512;
  config.max_rounds = 1;
  config.lit_weights.push_back({/*var=*/2, /*negated=*/true, /*weight=*/4.0f});
  sampler::GradientSampler sampler(config);
  sampler::RunOptions options = golden_options();
  options.store_all_draws = true;
  const sampler::RunResult result = sampler.run(formula, options);
  ASSERT_GT(result.solutions.size(), 100u);
  std::size_t x3_false = 0;
  for (const cnf::Assignment& draw : result.solutions) {
    if (draw[2] == 0) ++x3_false;
  }
  EXPECT_GE(static_cast<double>(x3_false) /
                static_cast<double>(result.solutions.size()),
            0.8);
}

TEST(WeightedLoss, ZeroAndEmptyWeightsAreBitIdentical) {
  benchgen::GenOptions gen;
  gen.scale = 0.05;
  const auto instance = benchgen::make_instance("or-50-10-7-UC-10", gen);
  auto run_with = [&](std::vector<sampler::LitWeight> weights) {
    sampler::GradientConfig config;
    config.batch = 256;
    config.max_rounds = 2;
    config.lit_weights = std::move(weights);
    sampler::GradientSampler sampler(config);
    const sampler::RunResult result = sampler.run(instance.formula, golden_options());
    EXPECT_EQ(sampler.extras().weighted_inputs, 0u);
    return result;
  };
  const sampler::RunResult none = run_with({});
  const sampler::RunResult zero = run_with({{/*var=*/0, false, /*weight=*/0.0f}});
  EXPECT_EQ(none.n_unique, zero.n_unique);
  ASSERT_EQ(none.solutions, zero.solutions);
}

TEST(WeightedLoss, PoliciesAgreeOnWeightedStreams) {
  benchgen::GenOptions gen;
  gen.scale = 0.05;
  const auto instance = benchgen::make_instance("75-10-1-q", gen);
  bool have_reference = false;
  sampler::RunResult reference;
  for (const tensor::Policy policy : {tensor::Policy::kSerial,
                                      tensor::Policy::kDataParallel,
                                      tensor::Policy::kLevelParallel}) {
    sampler::GradientConfig config;
    config.batch = 256;
    config.max_rounds = 2;
    config.policy = policy;
    config.lit_weights.push_back({/*var=*/0, false, /*weight=*/2.0f});
    config.lit_weights.push_back({/*var=*/3, true, /*weight=*/1.5f});
    sampler::GradientSampler sampler(config);
    const sampler::RunResult result = sampler.run(instance.formula, golden_options());
    if (!have_reference) {
      have_reference = true;
      reference = result;
      continue;
    }
    ASSERT_EQ(result.solutions, reference.solutions)
        << tensor::policy_name(policy);
  }
}

// --- diversity restarts ------------------------------------------------------

TEST(DiversityRestart, ReseedsRowsAndStaysDeterministic) {
  const cnf::Formula formula = projected_service_formula();
  auto run_with = [&](bool diversity) {
    sampler::GradientConfig config;
    config.batch = 256;
    config.max_rounds = 3;
    config.diversity_restart = diversity;
    sampler::GradientSampler sampler(config);
    const sampler::RunResult result = sampler.run(formula, golden_options());
    return std::make_pair(result, sampler.extras().diversity_restarted_rows);
  };
  const auto [off, off_rows] = run_with(false);
  EXPECT_EQ(off_rows, 0u);
  const auto [on_a, on_rows_a] = run_with(true);
  const auto [on_b, on_rows_b] = run_with(true);
  // Once classes are banked, subsequent rounds re-seed rows that would only
  // rediscover them.
  EXPECT_GT(on_rows_a, 0u);
  // Deterministic: same seed, same restarts, same stream.
  EXPECT_EQ(on_rows_a, on_rows_b);
  ASSERT_EQ(on_a.solutions, on_b.solutions);
  // Diversity must never lose classes at equal round budget.
  EXPECT_GE(on_a.n_unique, off.n_unique);
  expect_distinct_projections(on_a.solutions, formula.sampling_set());
}

// --- bank + normalization units ----------------------------------------------

TEST(ProjectedUnits, UniqueBankContains) {
  sampler::UniqueBank bank(/*n_bits=*/70);
  const std::vector<std::uint64_t> key = {0xdeadbeefULL, 0x2a};
  EXPECT_FALSE(bank.contains(key));
  EXPECT_TRUE(bank.insert(key));
  EXPECT_TRUE(bank.contains(key));
  EXPECT_FALSE(bank.insert(key));

  sampler::ShardedUniqueBank sharded(/*n_bits=*/70);
  EXPECT_FALSE(sharded.contains(key));
  EXPECT_TRUE(sharded.insert(key));
  EXPECT_TRUE(sharded.contains(key));
}

TEST(ProjectedUnits, NormalizeSamplingSetSortsDedupsAndDropsOutOfRange) {
  const std::vector<cnf::Var> normalized = sampler::normalize_sampling_set(
      {5, 1, 5, 99, 3, cnf::kInvalidVar, 1}, /*n_vars=*/10);
  const std::vector<cnf::Var> expect = {1, 3, 5};
  EXPECT_EQ(normalized, expect);
}

// --- end-to-end service contract ---------------------------------------------

TEST(ProjectedService, CIndScopedJobNeverDeliversADuplicateProjection) {
  const cnf::Formula formula = projected_service_formula();
  auto run_once = [&](std::size_t n_workers) {
    service::Server server({.n_workers = n_workers});
    service::SamplingRequest request;
    request.formula = formula;
    request.seed = 99;
    // All 6 reachable projected classes over {x1, x3, x5}: (x1,x3) has three
    // legal combinations under (~x1|~x3), and x5 is free.
    request.target_uniques = 6;
    request.deadline_ms = 60000.0;  // safety valve only
    request.config.batch = 128;
    request.config.iterations = 3;
    service::JobHandle handle = server.submit(std::move(request));
    (void)handle.wait();
    std::vector<cnf::Assignment> solutions;
    cnf::Assignment assignment;
    while (handle.stream().next(assignment)) solutions.push_back(assignment);
    return solutions;
  };
  bool have_reference = false;
  std::vector<cnf::Assignment> reference;
  for (const std::size_t n_workers : {1u, 2u, 4u}) {
    const std::vector<cnf::Assignment> solutions = run_once(n_workers);
    ASSERT_FALSE(solutions.empty());
    for (const cnf::Assignment& solution : solutions) {
      EXPECT_TRUE(formula.satisfied_by(solution));
    }
    expect_distinct_projections(solutions, formula.sampling_set());
    // The projected space over {x1, x3, x5} has at most 8 classes and
    // (~x1|~x3) kills two of them: the stream can never exceed 6.
    EXPECT_LE(solutions.size(), 6u);
    if (!have_reference) {
      have_reference = true;
      reference = solutions;
      continue;
    }
    // Content AND order are a pure function of (formula, seed, config).
    ASSERT_EQ(solutions, reference) << n_workers << " workers";
  }
}

TEST(ProjectedService, PerRequestSetOverridesAndOutlivesTheCaller) {
  // The request's own sampling set (not the formula's) drives projected
  // dedup, and the job owns a copy — the caller's vector can die.
  const cnf::Formula formula =
      cnf::parse_dimacs_string("p cnf 4 2\n1 2 0\n3 4 0\n");
  service::Server server({.n_workers = 2});
  service::JobHandle handle = [&] {
    std::vector<cnf::Var> ephemeral_set = {0, 1};
    service::SamplingRequest request;
    request.formula = formula;
    request.seed = 7;
    request.target_uniques = 3;
    request.sampling_set = ephemeral_set;
    request.config.batch = 128;
    request.config.iterations = 3;
    return server.submit(std::move(request));
  }();
  EXPECT_EQ(handle.wait(), service::JobStatus::kCompleted);
  EXPECT_EQ(handle.stats().n_unique, 3u);
  std::vector<cnf::Assignment> solutions;
  cnf::Assignment assignment;
  while (handle.stream().next(assignment)) solutions.push_back(assignment);
  ASSERT_EQ(solutions.size(), 3u);
  expect_distinct_projections(solutions, {0, 1});
}

}  // namespace
}  // namespace hts
