// Cross-cutting regression cases: gate-signature corners of Algorithm 1
// (NAND/NOR/implication blocks), partial-word masking in the GD harvester,
// store_all_draws semantics, XOR-heavy simplification, and solver/walksat
// agreement on benchmark-family instances.

#include <gtest/gtest.h>

#include <set>

#include "benchgen/families.hpp"
#include "benchgen/suite.hpp"
#include "circuit/tseitin.hpp"
#include "cnf/dimacs.hpp"
#include "core/gradient_sampler.hpp"
#include "expr/expr.hpp"
#include "solver/brute.hpp"
#include "solver/cdcl.hpp"
#include "solver/walksat.hpp"
#include "transform/transform.hpp"

namespace hts {
namespace {

// --- Algorithm 1 signature corners ---------------------------------------------

TEST(TransformSignatures, NandRecoveredAsComplementedAnd) {
  // f <-> ~(a & b): clauses (f|a)(f|b)(~f|~a|~b); f = var 3.
  const auto f = cnf::parse_dimacs_string("p cnf 3 3\n3 1 0\n3 2 0\n-3 -1 -2 0\n");
  const auto r = transform::transform_cnf(f);
  EXPECT_EQ(r.stats.n_gate_definitions, 1u);
  EXPECT_EQ(r.stats.n_flushed_blocks, 0u);
  const std::uint64_t expected = solver::count_models(f);
  // Count circuit solutions.
  std::uint64_t got = 0;
  std::vector<std::uint8_t> in(r.circuit.n_inputs());
  for (std::uint64_t bits = 0; bits < (1ULL << in.size()); ++bits) {
    for (std::size_t i = 0; i < in.size(); ++i) {
      in[i] = static_cast<std::uint8_t>((bits >> i) & 1);
    }
    if (r.circuit.outputs_satisfied(r.circuit.eval(in))) ++got;
  }
  EXPECT_EQ(got, expected);
}

TEST(TransformSignatures, NorRecovered) {
  // f <-> ~(a | b): clauses (~f|~a)(~f|~b)(f|a|b); f = var 3.
  const auto f = cnf::parse_dimacs_string("p cnf 3 3\n-3 -1 0\n-3 -2 0\n3 1 2 0\n");
  const auto r = transform::transform_cnf(f);
  EXPECT_EQ(r.stats.n_gate_definitions, 1u);
  EXPECT_EQ(solver::count_models(f), 4u);
}

TEST(TransformSignatures, ImplicationBlockIsBufferLike) {
  // (a -> b) alone is under-specified (no equivalence): must flush, not
  // invent a gate.
  const auto f = cnf::parse_dimacs_string("p cnf 2 1\n-1 2 0\n");
  const auto r = transform::transform_cnf(f);
  EXPECT_EQ(r.stats.n_gate_definitions, 0u);
  EXPECT_EQ(r.stats.n_flushed_blocks, 1u);
  std::uint64_t got = 0;
  std::vector<std::uint8_t> in(r.circuit.n_inputs());
  for (std::uint64_t bits = 0; bits < (1ULL << in.size()); ++bits) {
    for (std::size_t i = 0; i < in.size(); ++i) {
      in[i] = static_cast<std::uint8_t>((bits >> i) & 1);
    }
    if (r.circuit.outputs_satisfied(r.circuit.eval(in))) ++got;
  }
  EXPECT_EQ(got, 3u);
}

TEST(TransformSignatures, XnorSignatureRecovered) {
  // f <-> (a XNOR b): 4 clauses; f = var 3.
  const auto f = cnf::parse_dimacs_string(
      "p cnf 3 4\n3 1 2 0\n3 -1 -2 0\n-3 -1 2 0\n-3 1 -2 0\n");
  const auto r = transform::transform_cnf(f);
  EXPECT_EQ(r.stats.n_gate_definitions, 1u);
  EXPECT_EQ(solver::count_models(f), 4u);
}

TEST(TransformSignatures, TwoIndependentGatesDifferentBlocks) {
  // Two disjoint inverter definitions: two blocks, two gates.
  const auto f = cnf::parse_dimacs_string(
      "p cnf 4 4\n2 1 0\n-2 -1 0\n4 3 0\n-4 -3 0\n");
  const auto r = transform::transform_cnf(f);
  EXPECT_EQ(r.stats.n_gate_definitions, 2u);
  EXPECT_EQ(r.circuit.outputs().size(), 0u);  // nothing constrained
}

// --- expression engine: XOR-heavy corners ----------------------------------------

TEST(ExprXor, WideXorSimplifyStaysCheap) {
  expr::Manager mgr;
  std::vector<expr::ExprId> vars;
  for (std::uint32_t v = 0; v < 6; ++v) vars.push_back(mgr.var(v));
  const expr::ExprId wide = mgr.mk_xor(std::vector<expr::ExprId>(vars));
  // 6-input XOR: 5 ops; QM-based SOP resynthesis would need 32 cubes — the
  // simplifier must keep the XOR form.
  const expr::ExprId simplified = mgr.simplify(wide);
  EXPECT_EQ(mgr.op_count_2input(simplified), 5u);
  EXPECT_TRUE(mgr.equivalent(wide, simplified));
}

TEST(ExprXor, NestedXorParityFolds) {
  expr::Manager mgr;
  const auto a = mgr.var(0);
  const auto b = mgr.var(1);
  // ((a ^ b) ^ (a ^ b)) == 0 ; ((a ^ b) ^ a) == b.
  EXPECT_EQ(mgr.mk_xor2(mgr.mk_xor2(a, b), mgr.mk_xor2(a, b)), mgr.const0());
  EXPECT_EQ(mgr.mk_xor2(mgr.mk_xor2(a, b), a), b);
}

// --- harvester / run-options corners ---------------------------------------------

TEST(GdHarvest, PartialWordBatchMasksTailLanes) {
  // batch = 65: the second word has one valid lane; counts must not include
  // phantom lanes 1..63 of that word.
  const auto f = cnf::parse_dimacs_string("p cnf 2 1\n1 2 0\n");
  sampler::GradientConfig config;
  config.batch = 65;
  config.policy = tensor::Policy::kSerial;
  config.max_rounds = 1;
  sampler::GradientSampler sampler(config);
  sampler::RunOptions options;
  options.min_solutions = 0;
  options.budget_ms = -1.0;
  const auto result = sampler.run(f, options);
  EXPECT_LE(result.n_valid, 65u * 6);  // <= batch x collects per round
}

TEST(GdHarvest, StoreAllDrawsKeepsDuplicates) {
  const auto f = cnf::parse_dimacs_string("p cnf 2 1\n1 2 0\n");  // 3 models
  sampler::GradientConfig config;
  config.batch = 512;
  config.policy = tensor::Policy::kSerial;
  config.max_rounds = 2;
  sampler::GradientSampler sampler(config);

  sampler::RunOptions unique_only;
  unique_only.min_solutions = 0;
  unique_only.budget_ms = -1.0;
  unique_only.store_limit = 100000;
  const auto r1 = sampler.run(f, unique_only);
  EXPECT_LE(r1.solutions.size(), 3u);

  sampler::RunOptions all_draws = unique_only;
  all_draws.store_all_draws = true;
  const auto r2 = sampler.run(f, all_draws);
  EXPECT_GT(r2.solutions.size(), 3u);
  EXPECT_EQ(r2.solutions.size(), r2.n_valid);
}

// --- golden determinism of full sampling runs ---------------------------------------
//
// Every engine policy executes the compiled plan in the same order (forward
// in plan order, backward in reverse plan order) with chunk boundaries fixed
// at plan time — so a fixed-seed sampling run must reproduce the *exact*
// solution stream regardless of scheduling policy or machine thread count.
// The harvester's two-phase collect preserves this through the discrete half
// of the loop.  With store_limit above the unique yield the stored stream
// *is* the unique-solution fingerprint (every new unique is stored, in bank
// insertion order), so element-wise stream equality pins the whole pipeline.

TEST(GoldenDeterminism, FixedSeedRunsReproduceFingerprintsAcrossPolicies) {
  benchgen::GenOptions gen;
  gen.scale = 0.05;
  for (const auto& name : {"or-50-10-7-UC-10", "75-10-1-q"}) {
    const auto instance = benchgen::make_instance(name, gen);
    constexpr tensor::Policy kPolicies[] = {tensor::Policy::kSerial,
                                            tensor::Policy::kDataParallel,
                                            tensor::Policy::kLevelParallel};
    bool have_reference = false;
    sampler::RunResult reference;
    std::vector<std::size_t> reference_curve;
    for (const tensor::Policy policy : kPolicies) {
      sampler::GradientConfig config;
      config.batch = 256;
      config.policy = policy;
      config.max_rounds = 2;
      sampler::GradientSampler sampler(config);
      sampler::RunOptions options;
      options.min_solutions = 0;   // only the round budget stops the run
      options.budget_ms = -1.0;    // no deadline: rounds are the only clock
      options.store_limit = 1 << 20;
      options.verify_against_cnf = true;
      options.seed = 0x90dd;
      const sampler::RunResult result = sampler.run(instance.formula, options);
      EXPECT_EQ(result.n_invalid, 0u) << name;
      if (!have_reference) {
        have_reference = true;
        reference = result;
        reference_curve = sampler.uniques_per_iteration();
        EXPECT_GT(reference.n_valid, 0u) << name;
        continue;
      }
      EXPECT_EQ(result.n_unique, reference.n_unique)
          << name << " policy " << tensor::policy_name(policy);
      EXPECT_EQ(result.n_valid, reference.n_valid)
          << name << " policy " << tensor::policy_name(policy);
      ASSERT_EQ(result.solutions, reference.solutions)
          << name << " policy " << tensor::policy_name(policy);
      EXPECT_EQ(sampler.uniques_per_iteration(), reference_curve)
          << name << " policy " << tensor::policy_name(policy);
    }
  }
}

TEST(GoldenDeterminism, RepeatedRunsReproduceExactly) {
  // Same config twice (level-parallel, the policy with the most scheduling
  // freedom): the stream must be bit-identical run to run.
  benchgen::GenOptions gen;
  gen.scale = 0.05;
  const auto instance = benchgen::make_instance("75-10-1-q", gen);
  sampler::GradientConfig config;
  config.batch = 256;
  config.policy = tensor::Policy::kLevelParallel;
  config.max_rounds = 2;
  sampler::RunOptions options;
  options.min_solutions = 0;
  options.budget_ms = -1.0;
  options.store_limit = 1 << 20;
  options.seed = 0x90dd;
  sampler::GradientSampler a(config);
  sampler::GradientSampler b(config);
  const sampler::RunResult ra = a.run(instance.formula, options);
  const sampler::RunResult rb = b.run(instance.formula, options);
  EXPECT_EQ(ra.n_unique, rb.n_unique);
  EXPECT_EQ(ra.n_valid, rb.n_valid);
  ASSERT_EQ(ra.solutions, rb.solutions);
}

// --- solver agreement on benchmark-family instances --------------------------------

TEST(SolverFamilies, CdclSolvesEveryTinyFamilyInstance) {
  benchgen::GenOptions gen;
  gen.scale = 0.02;
  for (const auto& name : benchgen::table2_names()) {
    const auto instance = benchgen::make_instance(name, gen);
    cnf::Assignment model;
    ASSERT_EQ(solver::solve_formula(instance.formula, &model), solver::Status::kSat)
        << name;
    EXPECT_TRUE(instance.formula.satisfied_by(model)) << name;
  }
}

TEST(SolverFamilies, WalkSatSolvesOrFamily) {
  const auto instance = benchgen::make_instance("or-50-10-7-UC-10");
  solver::WalkSatConfig config;
  config.max_flips = 500000;
  solver::WalkSat walksat(instance.formula, config);
  const auto model = walksat.search();
  ASSERT_TRUE(model.has_value());
  EXPECT_TRUE(instance.formula.satisfied_by(*model));
}

TEST(SolverFamilies, BlockingEnumerationMatchesBruteOnFig1) {
  // The Fig. 1 demo instance has exactly 32 models; CDCL enumeration with
  // blocking clauses must find them all.
  const auto f = cnf::parse_dimacs_string(
      "p cnf 14 21\n-1 -2 0\n1 2 0\n-2 3 0\n2 -3 0\n-3 4 0\n3 -4 0\n"
      "-4 -11 5 0\n-4 11 -5 0\n4 -12 5 0\n4 12 -5 0\n-6 7 0\n6 -7 0\n"
      "-7 8 0\n7 -8 0\n-8 -9 0\n8 9 0\n-9 -13 10 0\n-9 13 -10 0\n"
      "9 -14 10 0\n9 14 -10 0\n10 0\n");
  solver::CdclSolver solver;
  solver.add_formula(f);
  std::size_t count = 0;
  while (solver.solve() == solver::Status::kSat) {
    ++count;
    ASSERT_LE(count, 32u);
    if (!solver.block_model()) break;
  }
  EXPECT_EQ(count, 32u);
}

// --- Tseitin signature shape checks --------------------------------------------------

TEST(TseitinShapes, NandNorClauseCounts) {
  circuit::Circuit c;
  const auto a = c.add_input();
  const auto b = c.add_input();
  const auto d = c.add_input();
  (void)c.add_gate(circuit::GateType::kNand, {a, b, d});
  const auto enc = circuit::tseitin_encode(c);
  // n-input NAND: 1 wide + n binaries.
  EXPECT_EQ(enc.formula.n_clauses(), 4u);
  // Every input assignment has exactly one consistent completion.
  EXPECT_EQ(solver::count_models(enc.formula), 8u);
}

TEST(TseitinShapes, RoundTripThroughTransformShrinks) {
  // Tseitin then Algorithm 1 must come back to about the original size for
  // each family (the whole premise of the paper).
  benchgen::GenOptions gen;
  gen.scale = 0.05;
  for (const auto& name : {"or-50-10-7-UC-10", "75-10-1-q"}) {
    const auto instance = benchgen::make_instance(name, gen);
    const auto r = transform::transform_cnf(instance.formula);
    const double recovered = static_cast<double>(r.circuit.n_gates());
    const double original = static_cast<double>(instance.circuit.n_gates());
    EXPECT_LT(recovered, original * 1.5) << name;
  }
}

}  // namespace
}  // namespace hts
