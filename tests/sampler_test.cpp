// Tests for the gradient sampler (the paper's method) and the UniqueBank:
// validity of every emitted solution, unique-count exactness on enumerable
// instances, determinism, iteration/learning behaviour, cone-only ablation,
// and UNSAT handling.

#include <gtest/gtest.h>

#include "baselines/diff_sampler.hpp"
#include "bdd/builder.hpp"
#include "core/gradient_sampler.hpp"
#include "core/unique_bank.hpp"
#include "circuit/tseitin.hpp"
#include "cnf/dimacs.hpp"
#include "solver/brute.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace hts::sampler {
namespace {

TEST(UniqueBank, DeduplicatesKeys) {
  UniqueBank bank(130);  // > 2 words
  std::vector<std::uint64_t> key(bank.n_words(), 0);
  EXPECT_TRUE(bank.insert(key));
  EXPECT_FALSE(bank.insert(key));
  key[1] = 1;
  EXPECT_TRUE(bank.insert(key));
  EXPECT_EQ(bank.size(), 2u);
}

TEST(UniqueBank, InsertBitsMatchesPackedInsert) {
  UniqueBank bank(70);
  std::vector<std::uint8_t> bits(70, 0);
  bits[0] = 1;
  bits[69] = 1;
  EXPECT_TRUE(bank.insert_bits(bits));
  std::vector<std::uint64_t> key(bank.n_words(), 0);
  key[0] = 1ULL;
  key[1] = 1ULL << 5;  // bit 69
  EXPECT_FALSE(bank.insert(key));
}

/// A small formula with a known, comfortable solution space:
/// (x1|x2) & (x3|x4) & (~x1|~x3) over 7 vars — 10 constrained models times
/// 2^3 free variables = 80 solutions, so every target below is reachable.
cnf::Formula small_formula() {
  return cnf::parse_dimacs_string("p cnf 7 3\n1 2 0\n3 4 0\n-1 -3 0\n");
}

RunOptions fast_options(std::size_t min_solutions = 10) {
  RunOptions options;
  options.min_solutions = min_solutions;
  options.budget_ms = 5000.0;
  options.store_limit = 64;
  options.verify_against_cnf = true;
  options.seed = 123;
  return options;
}

GradientConfig small_config() {
  GradientConfig config;
  config.batch = 256;
  config.policy = tensor::Policy::kSerial;
  return config;
}

TEST(GradientSampler, AllSolutionsValid) {
  const cnf::Formula f = small_formula();
  GradientSampler sampler(small_config());
  const RunResult result = sampler.run(f, fast_options());
  EXPECT_GE(result.n_unique, 10u);
  EXPECT_EQ(result.n_invalid, 0u);
  for (const cnf::Assignment& solution : result.solutions) {
    EXPECT_TRUE(f.satisfied_by(solution));
  }
}

TEST(GradientSampler, FindsEntireSolutionSpace) {
  // Exhaustible instance: every model must eventually be sampled, and the
  // unique count can never exceed the exact model count.
  const cnf::Formula f = small_formula();
  const std::uint64_t exact = solver::count_models(f);
  RunOptions options = fast_options(/*min_solutions=*/exact);
  options.store_limit = 2 * exact;
  GradientSampler sampler(small_config());
  const RunResult result = sampler.run(f, options);
  EXPECT_EQ(result.n_unique, exact);
  EXPECT_LE(result.n_unique, exact);
  // Stored solutions are distinct.
  std::set<cnf::Assignment> distinct(result.solutions.begin(),
                                     result.solutions.end());
  EXPECT_EQ(distinct.size(), result.solutions.size());
}

TEST(GradientSampler, DeterministicForSeed) {
  const cnf::Formula f = small_formula();
  RunOptions options = fast_options(20);
  options.budget_ms = -1.0;  // no deadline: fully deterministic
  GradientSampler a(small_config());
  GradientSampler b(small_config());
  const RunResult ra = a.run(f, options);
  const RunResult rb = b.run(f, options);
  EXPECT_EQ(ra.n_unique, rb.n_unique);
  EXPECT_EQ(ra.n_valid, rb.n_valid);
  EXPECT_EQ(ra.solutions, rb.solutions);
}

TEST(GradientSampler, DifferentSeedsDiversify) {
  const cnf::Formula f = small_formula();
  RunOptions options = fast_options(15);
  options.budget_ms = -1.0;
  options.seed = 1;
  GradientSampler sampler(small_config());
  const RunResult ra = sampler.run(f, options);
  options.seed = 2;
  const RunResult rb = sampler.run(f, options);
  EXPECT_NE(ra.solutions, rb.solutions);
}

TEST(GradientSampler, UniquesPerIterationMonotone) {
  const cnf::Formula f = small_formula();
  GradientSampler sampler(small_config());
  (void)sampler.run(f, fast_options(20));
  const auto& curve = sampler.uniques_per_iteration();
  ASSERT_FALSE(curve.empty());
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i], curve[i - 1]) << i;
  }
  EXPECT_GT(curve.back(), 0u);
}

TEST(GradientSampler, ProgressTimestampsMonotone) {
  const cnf::Formula f = small_formula();
  GradientSampler sampler(small_config());
  const RunResult result = sampler.run(f, fast_options(20));
  for (std::size_t i = 1; i < result.progress.size(); ++i) {
    EXPECT_GE(result.progress[i].elapsed_ms, result.progress[i - 1].elapsed_ms);
    EXPECT_GE(result.progress[i].n_unique, result.progress[i - 1].n_unique);
  }
}

TEST(GradientSampler, ConeOnlySamplesValidly) {
  const cnf::Formula f = small_formula();
  GradientConfig config = small_config();
  config.cone_only = true;
  GradientSampler sampler(config);
  const RunResult result = sampler.run(f, fast_options());
  EXPECT_GE(result.n_unique, 10u);
  EXPECT_EQ(result.n_invalid, 0u);
}

TEST(GradientSampler, HandlesUnsat) {
  const cnf::Formula f = cnf::parse_dimacs_string("p cnf 1 2\n1 0\n-1 0\n");
  GradientSampler sampler(small_config());
  RunOptions options = fast_options(5);
  options.budget_ms = 200.0;
  const RunResult result = sampler.run(f, options);
  EXPECT_EQ(result.n_unique, 0u);
  // Either recognized during transformation or simply yields nothing.
  EXPECT_TRUE(result.proven_unsat || result.timed_out);
}

TEST(GradientSampler, RespectsDeadline) {
  // Unsatisfiable XOR chain forced to an odd parity while even: GD can never
  // emit anything, so the deadline is the only exit.
  cnf::Formula f = cnf::parse_dimacs_string(
      "p cnf 2 4\n1 2 0\n1 -2 0\n-1 2 0\n-1 -2 0\n");
  GradientSampler sampler(small_config());
  RunOptions options;
  options.min_solutions = 1;
  options.budget_ms = 150.0;
  util::Timer timer;
  const RunResult result = sampler.run(f, options);
  EXPECT_EQ(result.n_unique, 0u);
  EXPECT_LT(timer.milliseconds(), 5000.0);
}

TEST(GradientSampler, TransformStatsExposed) {
  const cnf::Formula f = small_formula();
  GradientSampler sampler(small_config());
  (void)sampler.run(f, fast_options());
  ASSERT_TRUE(sampler.transform_stats().has_value());
  EXPECT_GT(sampler.transform_stats()->cnf_ops, 0u);
  EXPECT_GT(sampler.engine_memory_bytes(), 0u);
}

TEST(GradientSampler, SetupTimeSeparatedFromSampling) {
  const cnf::Formula f = small_formula();
  GradientSampler sampler(small_config());
  const RunResult result = sampler.run(f, fast_options());
  EXPECT_GE(result.setup_ms, 0.0);
  EXPECT_GT(result.elapsed_ms, 0.0);
}

TEST(GradientSampler, ThroughputMetricConsistent) {
  const cnf::Formula f = small_formula();
  GradientSampler sampler(small_config());
  const RunResult result = sampler.run(f, fast_options(20));
  EXPECT_NEAR(result.throughput(),
              static_cast<double>(result.n_unique) / (result.elapsed_ms / 1e3),
              1e-9);
}

TEST(GradientSampler, LargerBatchNoWorse) {
  // On an easy instance a bigger batch should reach the target in no more
  // rounds (sanity check of batch plumbing, not a performance assertion).
  const cnf::Formula f = small_formula();
  GradientConfig big = small_config();
  big.batch = 1024;
  GradientSampler sampler(big);
  const RunResult result = sampler.run(f, fast_options(20));
  EXPECT_GE(result.n_unique, 20u);
  EXPECT_EQ(result.n_invalid, 0u);
}

TEST(GradientSampler, SolvesTseitinStructuredInstance) {
  // A deeper structured instance (the transformation actually matters):
  // 3-chain circuit with a MUX, Tseitin-encoded.
  circuit::Circuit c;
  const auto s = c.add_input();
  const auto d1 = c.add_input();
  const auto d0 = c.add_input();
  auto cur = c.add_gate(circuit::GateType::kNot, {s});
  cur = c.add_gate(circuit::GateType::kBuf, {cur});
  const auto t1 = c.add_gate(circuit::GateType::kAnd, {cur, d1});
  const auto ns = c.add_gate(circuit::GateType::kNot, {cur});
  const auto t0 = c.add_gate(circuit::GateType::kAnd, {ns, d0});
  const auto mux = c.add_gate(circuit::GateType::kOr, {t1, t0});
  c.add_output(mux, true);
  const auto enc = circuit::tseitin_encode(c);

  GradientSampler sampler(small_config());
  RunOptions options = fast_options(3);
  const RunResult result = sampler.run(enc.formula, options);
  EXPECT_GE(result.n_unique, 3u);
  EXPECT_EQ(result.n_invalid, 0u);
}

// Parameterized sweep: batch sizes x instances, everything must stay valid.
class GradientSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, int>> {};

TEST_P(GradientSweep, ValidAcrossBatchAndSeeds) {
  const auto [batch, seed] = GetParam();
  const cnf::Formula f = small_formula();
  GradientConfig config = small_config();
  config.batch = batch;
  GradientSampler sampler(config);
  RunOptions options = fast_options(8);
  options.seed = static_cast<std::uint64_t>(seed) * 7 + 1;
  const RunResult result = sampler.run(f, options);
  EXPECT_EQ(result.n_invalid, 0u);
  EXPECT_GE(result.n_unique, 8u);
}

INSTANTIATE_TEST_SUITE_P(
    BatchSeedGrid, GradientSweep,
    ::testing::Combine(::testing::Values<std::size_t>(64, 100, 257, 1024),
                       ::testing::Range(0, 3)));

}  // namespace
}  // namespace hts::sampler
