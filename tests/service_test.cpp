// Tests for the sampling service: job lifecycle end to end, determinism of
// each job's solution stream under any fleet size, plan-cache hit/eviction/
// in-flight-dedup behaviour, deadline and cancellation correctness,
// per-request memory caps, stream backpressure and callback delivery, and
// the no-head-of-line-blocking scheduling property.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "benchgen/families.hpp"
#include "cnf/dimacs.hpp"
#include "service/plan_cache.hpp"
#include "service/server.hpp"

namespace hts::service {
namespace {

/// (x1|x2) & (x3|x4) & (~x1|~x3) over 7 vars: 5 constrained models times
/// 2^3 free variables = 40 solutions — every small target is reachable,
/// and an absurd target never is (endless-job fixture).
cnf::Formula formula_a() {
  return cnf::parse_dimacs_string("p cnf 7 3\n1 2 0\n3 4 0\n-1 -3 0\n");
}

/// A structurally different instance: (x5 xor x6) & (x1|x2|x3) & (~x2|x4)
/// over 8 vars; comfortably satisfiable.
cnf::Formula formula_b() {
  return cnf::parse_dimacs_string(
      "p cnf 8 4\n5 6 0\n-5 -6 0\n1 2 3 0\n-2 4 0\n");
}

/// Contains an empty clause, which the transformation's flush path
/// simplifies to constant false — the one shape it *proves* UNSAT.  (Merely
/// contradictory formulas, e.g. the 2-var XOR contradiction, transform into
/// circuits whose constraints are unsatisfiable but are not detected; a
/// service job on one runs to its deadline/cap like any other dry well.)
cnf::Formula unsat_formula() {
  return cnf::parse_dimacs_string("p cnf 2 3\n1 2 0\n0\n-1 0\n");
}

/// A request the test server can finish quickly.
SamplingRequest small_request(cnf::Formula formula, std::size_t target = 20,
                              std::uint64_t seed = 123) {
  SamplingRequest request;
  request.formula = std::move(formula);
  request.seed = seed;
  request.target_uniques = target;
  request.config.batch = 128;
  request.config.iterations = 3;
  return request;
}

/// A request that can never complete (target far above the model count) —
/// the deadline / cancel / cap fixtures build on it.
SamplingRequest endless_request(std::uint64_t seed = 7) {
  SamplingRequest request = small_request(formula_a(), 1000000, seed);
  return request;
}

std::vector<cnf::Assignment> collect_stream(const JobHandle& handle) {
  std::vector<cnf::Assignment> all;
  cnf::Assignment assignment;
  while (handle.stream().next(assignment)) all.push_back(assignment);
  return all;
}

void expect_all_valid(const cnf::Formula& formula,
                      const std::vector<cnf::Assignment>& solutions) {
  for (const cnf::Assignment& solution : solutions) {
    ASSERT_EQ(solution.size(), formula.n_vars());
    EXPECT_TRUE(formula.satisfied_by(solution));
  }
}

void expect_all_distinct(const std::vector<cnf::Assignment>& solutions) {
  std::set<cnf::Assignment> unique(solutions.begin(), solutions.end());
  EXPECT_EQ(unique.size(), solutions.size());
}

// --- lifecycle ---------------------------------------------------------------

TEST(ServiceServer, SingleJobCompletesAndStreamsValidUniqueSolutions) {
  Server server({.n_workers = 2});
  JobHandle handle = server.submit(small_request(formula_a(), 25));
  ASSERT_TRUE(handle.valid());
  EXPECT_EQ(handle.wait(), JobStatus::kCompleted);

  const std::vector<cnf::Assignment> solutions = collect_stream(handle);
  const JobStats stats = handle.stats();
  EXPECT_GE(stats.n_unique, 25u);
  EXPECT_EQ(stats.delivered, solutions.size());
  EXPECT_EQ(stats.n_unique, solutions.size());
  expect_all_valid(formula_a(), solutions);
  expect_all_distinct(solutions);
  EXPECT_GE(stats.rounds, 1u);
  EXPECT_GE(stats.gd_iterations, 1u);
  EXPECT_GT(stats.rows_validated, 0u);
  EXPECT_GT(stats.wall_ms, 0.0);
  EXPECT_GT(stats.bank_bytes, 0u);
  EXPECT_FALSE(stats.plan_cache_hit);  // cold cache

  const ServerStats server_stats = server.stats();
  EXPECT_EQ(server_stats.submitted, 1u);
  EXPECT_EQ(server_stats.completed, 1u);
}

TEST(ServiceServer, UnsatFormulaFinishesAsUnsat) {
  Server server({.n_workers = 1});
  JobHandle handle = server.submit(small_request(unsat_formula(), 5));
  EXPECT_EQ(handle.wait(), JobStatus::kUnsat);
  EXPECT_EQ(handle.stats().n_unique, 0u);
  EXPECT_EQ(collect_stream(handle).size(), 0u);
}

TEST(ServiceServer, SubmitAfterShutdownReturnsCancelledHandle) {
  Server server({.n_workers = 1});
  server.shutdown();
  JobHandle handle = server.submit(small_request(formula_a()));
  EXPECT_EQ(handle.wait(), JobStatus::kCancelled);
}

TEST(ServiceServer, ShutdownCancelsOutstandingJobs) {
  Server server({.n_workers = 1});
  std::vector<JobHandle> handles;
  for (int i = 0; i < 4; ++i) {
    handles.push_back(server.submit(endless_request(static_cast<std::uint64_t>(i))));
  }
  // Let at least one job start before tearing the fleet down.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  server.shutdown();
  for (const JobHandle& handle : handles) {
    EXPECT_EQ(handle.wait(), JobStatus::kCancelled);
    EXPECT_TRUE(handle.stream().closed());
  }
}

// --- determinism -------------------------------------------------------------

TEST(ServiceServer, SolutionStreamIsDeterministicAcrossFleetSizes) {
  auto run_once = [](std::size_t n_workers, bool with_decoys) {
    Server server({.n_workers = n_workers});
    std::vector<JobHandle> decoys;
    if (with_decoys) {
      for (int i = 0; i < 6; ++i) {
        decoys.push_back(server.submit(
            small_request(formula_b(), 15, 1000 + static_cast<std::uint64_t>(i))));
      }
    }
    JobHandle handle = server.submit(small_request(formula_a(), 30, 99));
    EXPECT_EQ(handle.wait(), JobStatus::kCompleted);
    std::vector<cnf::Assignment> solutions = collect_stream(handle);
    for (const JobHandle& decoy : decoys) decoy.wait();
    return solutions;
  };

  const std::vector<cnf::Assignment> solo = run_once(1, false);
  const std::vector<cnf::Assignment> fleet = run_once(4, true);
  // Not just the same set: the same assignments in the same order.
  EXPECT_EQ(solo, fleet);
  EXPECT_GE(solo.size(), 30u);
}

// --- multi-client stress -----------------------------------------------------

TEST(ServiceServer, ManyOverlappingMixedClientsAllFinishCorrectly) {
  const benchgen::Instance or_instance =
      benchgen::make_instance("or-50-10-7-UC-10");
  Server server({.n_workers = 4});

  struct Submitted {
    JobHandle handle;
    const cnf::Formula* formula;
    JobStatus expect;
  };
  std::vector<Submitted> jobs;
  const cnf::Formula a = formula_a();
  const cnf::Formula b = formula_b();
  const cnf::Formula unsat = unsat_formula();

  for (std::uint64_t i = 0; i < 4; ++i) {
    SamplingRequest request = small_request(a, 20, 10 + i);
    request.client_id = i;
    jobs.push_back({server.submit(std::move(request)), &a,
                    JobStatus::kCompleted});
  }
  for (std::uint64_t i = 0; i < 4; ++i) {
    SamplingRequest request = small_request(b, 15, 20 + i);
    request.client_id = i;
    jobs.push_back({server.submit(std::move(request)), &b,
                    JobStatus::kCompleted});
  }
  for (std::uint64_t i = 0; i < 2; ++i) {
    SamplingRequest request;
    request.formula = or_instance.formula;
    request.seed = 30 + i;
    request.target_uniques = 25;
    request.config.batch = 512;
    request.client_id = 4 + i;
    jobs.push_back({server.submit(std::move(request)), &or_instance.formula,
                    JobStatus::kCompleted});
  }
  {
    SamplingRequest request = small_request(unsat, 5, 40);
    request.client_id = 6;
    jobs.push_back({server.submit(std::move(request)), &unsat,
                    JobStatus::kUnsat});
  }
  {
    SamplingRequest request = endless_request(41);
    request.client_id = 7;
    request.max_uniques = 30;
    request.target_uniques = 0;
    jobs.push_back({server.submit(std::move(request)), &a, JobStatus::kCapped});
  }

  for (Submitted& job : jobs) {
    EXPECT_EQ(job.handle.wait(), job.expect);
    const std::vector<cnf::Assignment> solutions = collect_stream(job.handle);
    expect_all_valid(*job.formula, solutions);
    expect_all_distinct(solutions);
    const JobStats stats = job.handle.stats();
    EXPECT_EQ(stats.delivered, solutions.size());
    EXPECT_EQ(stats.n_unique, solutions.size());
    if (job.expect == JobStatus::kCompleted) {
      EXPECT_GE(stats.n_unique, 15u);
    }
  }

  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.submitted, jobs.size());
  EXPECT_EQ(stats.completed, 10u);
  EXPECT_EQ(stats.unsat, 1u);
  EXPECT_EQ(stats.capped, 1u);
  // 12 jobs over 4 distinct formula/options keys -> 4 compiles total.
  const PlanCache::Stats cache = server.plan_cache_stats();
  EXPECT_EQ(cache.misses, 4u);
  EXPECT_EQ(cache.hits, jobs.size() - 4u);
}

// --- plan cache --------------------------------------------------------------

TEST(PlanCache, FingerprintSeparatesFormulasAndOptions) {
  const PlanOptions base;
  const PlanKey key_a = plan_fingerprint(formula_a(), base);
  EXPECT_EQ(key_a, plan_fingerprint(formula_a(), base));  // stable
  EXPECT_FALSE(key_a == plan_fingerprint(formula_b(), base));

  PlanOptions cone = base;
  cone.cone_only = true;
  EXPECT_FALSE(key_a == plan_fingerprint(formula_a(), cone));

  // Clause order is structural: permuted formulas compile differently.
  cnf::Formula permuted = cnf::parse_dimacs_string(
      "p cnf 7 3\n3 4 0\n1 2 0\n-1 -3 0\n");
  EXPECT_FALSE(key_a == plan_fingerprint(permuted, base));
}

TEST(PlanCache, SecondRequestHitsAndSharesThePlan) {
  PlanCache cache(4);
  bool hit = true;
  const auto first = cache.get_or_compile(formula_a(), {}, &hit);
  EXPECT_FALSE(hit);
  ASSERT_NE(first, nullptr);
  EXPECT_TRUE(first->compiled.has_value());
  EXPECT_TRUE(first->eval_plan.has_value());
  EXPECT_GE(first->compile_ms, 0.0);

  const auto second = cache.get_or_compile(formula_a(), {}, &hit);
  EXPECT_TRUE(hit);
  EXPECT_EQ(first.get(), second.get());  // shared, not recompiled
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(PlanCache, EvictsLeastRecentlyUsedBeyondCapacity) {
  PlanCache cache(2);
  (void)cache.get_or_compile(formula_a(), {}, nullptr);
  (void)cache.get_or_compile(formula_b(), {}, nullptr);
  // Touch A so B is the LRU victim when a third key arrives.
  bool hit = false;
  (void)cache.get_or_compile(formula_a(), {}, &hit);
  EXPECT_TRUE(hit);
  (void)cache.get_or_compile(unsat_formula(), {}, nullptr);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().evictions, 1u);

  (void)cache.get_or_compile(formula_a(), {}, &hit);
  EXPECT_TRUE(hit);  // survived
  (void)cache.get_or_compile(formula_b(), {}, &hit);
  EXPECT_FALSE(hit);  // was evicted, recompiled
}

TEST(PlanCache, ConcurrentMissesOnOneKeyCompileOnce) {
  PlanCache cache(4);
  constexpr std::size_t kThreads = 8;
  std::vector<std::shared_ptr<const CompiledPlan>> plans(kThreads);
  std::vector<std::thread> threads;
  const cnf::Formula formula = formula_a();
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back(
        [&, t] { plans[t] = cache.get_or_compile(formula, {}, nullptr); });
  }
  for (std::thread& thread : threads) thread.join();
  for (std::size_t t = 1; t < kThreads; ++t) {
    EXPECT_EQ(plans[0].get(), plans[t].get());
  }
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().hits, kThreads - 1);
}

TEST(PlanCache, UnsatPlanCarriesNoEngineArtifacts) {
  PlanCache cache(2);
  const auto plan = cache.get_or_compile(unsat_formula(), {}, nullptr);
  EXPECT_TRUE(plan->transformed.proven_unsat);
  EXPECT_FALSE(plan->compiled.has_value());
  EXPECT_FALSE(plan->eval_plan.has_value());
}

// --- deadlines, cancellation, caps -------------------------------------------

TEST(ServiceServer, DeadlineExpiryReturnsPartialResultsCleanly) {
  Server server({.n_workers = 1});
  SamplingRequest request = endless_request();
  request.deadline_ms = 200.0;
  const JobHandle handle = server.submit(std::move(request));
  EXPECT_EQ(handle.wait(), JobStatus::kDeadlineExpired);
  const JobStats stats = handle.stats();
  // Partial results: the formula has only 40 models, so the job banked
  // them all long before the deadline and kept (unsuccessfully) looking.
  EXPECT_GT(stats.n_unique, 0u);
  EXPECT_EQ(stats.delivered, stats.n_unique);
  // The budget is overshot by at most slice granularity, not by rounds of
  // extra work; generous bound to stay robust on loaded CI machines.
  EXPECT_LT(stats.wall_ms, 5000.0);
  const std::vector<cnf::Assignment> solutions = collect_stream(handle);
  expect_all_valid(formula_a(), solutions);
  EXPECT_EQ(solutions.size(), stats.n_unique);
}

TEST(ServiceServer, CancelStopsARunningJobPromptly) {
  Server server({.n_workers = 1});
  const JobHandle handle = server.submit(endless_request());
  // Let it start producing, then cancel.
  while (handle.stats().rounds == 0 &&
         !job_status_terminal(handle.status())) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  handle.cancel();
  EXPECT_EQ(handle.wait(), JobStatus::kCancelled);
  EXPECT_TRUE(handle.stream().closed());
  // Partial results survive cancellation.
  EXPECT_EQ(collect_stream(handle).size(), handle.stats().delivered);
}

TEST(ServiceServer, CancelRetiresQueuedJobsWithoutRunningThem) {
  Server server({.n_workers = 1});
  const JobHandle runner = server.submit(endless_request(1));
  const JobHandle queued = server.submit(endless_request(2));
  queued.cancel();
  EXPECT_EQ(queued.wait(), JobStatus::kCancelled);
  EXPECT_EQ(queued.stats().rounds, 0u);
  EXPECT_EQ(queued.stats().gd_iterations, 0u);
  runner.cancel();
  EXPECT_EQ(runner.wait(), JobStatus::kCancelled);
}

TEST(ServiceServer, MaxUniquesCapBoundsTheBank) {
  Server server({.n_workers = 1});
  SamplingRequest request = endless_request();
  request.target_uniques = 0;  // run until a cap fires
  request.max_uniques = 10;
  const JobHandle handle = server.submit(std::move(request));
  EXPECT_EQ(handle.wait(), JobStatus::kCapped);
  const JobStats stats = handle.stats();
  EXPECT_GE(stats.n_unique, 10u);
  // Overshoot is bounded by one harvest of one batch.
  EXPECT_LE(stats.n_unique, 10u + 128u);
  EXPECT_GT(stats.bank_bytes, 0u);
}

TEST(ServiceServer, MaxBankBytesCapFires) {
  Server server({.n_workers = 1});
  SamplingRequest request = endless_request();
  request.target_uniques = 0;
  request.max_bank_bytes = 1;  // any banked unique trips it
  const JobHandle handle = server.submit(std::move(request));
  EXPECT_EQ(handle.wait(), JobStatus::kCapped);
  EXPECT_GE(handle.stats().bank_bytes, 1u);
}

// --- delivery modes ----------------------------------------------------------

TEST(ServiceServer, BoundedStreamBackpressureLosesNothing) {
  Server server({.n_workers = 2});
  SamplingRequest request = small_request(formula_a(), 30);
  request.stream_capacity = 2;  // far below the target: push must block
  const JobHandle handle = server.submit(std::move(request));

  // Consume deliberately slowly; the producer must wait, not drop.
  std::vector<cnf::Assignment> solutions;
  cnf::Assignment assignment;
  while (handle.stream().next(assignment)) {
    solutions.push_back(assignment);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(handle.wait(), JobStatus::kCompleted);
  const JobStats stats = handle.stats();
  EXPECT_EQ(solutions.size(), stats.delivered);
  EXPECT_EQ(solutions.size(), stats.n_unique);
  expect_all_valid(formula_a(), solutions);
  expect_all_distinct(solutions);
}

TEST(ServiceServer, CallbackDeliveryBypassesTheBuffer) {
  Server server({.n_workers = 1});
  std::mutex mutex;
  std::vector<cnf::Assignment> delivered;
  SamplingRequest request = small_request(formula_a(), 20);
  request.on_solution = [&](const cnf::Assignment& assignment) {
    std::lock_guard<std::mutex> lock(mutex);
    delivered.push_back(assignment);
  };
  const JobHandle handle = server.submit(std::move(request));
  EXPECT_EQ(handle.wait(), JobStatus::kCompleted);
  std::lock_guard<std::mutex> lock(mutex);
  EXPECT_EQ(delivered.size(), handle.stats().delivered);
  EXPECT_GE(delivered.size(), 20u);
  EXPECT_EQ(handle.stream().buffered(), 0u);
  expect_all_valid(formula_a(), delivered);
}

TEST(ServiceServer, CountOnlyJobsDeliverNothingButStillCount) {
  Server server({.n_workers = 1});
  SamplingRequest request = small_request(formula_a(), 20);
  request.deliver_solutions = false;
  const JobHandle handle = server.submit(std::move(request));
  EXPECT_EQ(handle.wait(), JobStatus::kCompleted);
  EXPECT_GE(handle.stats().n_unique, 20u);
  EXPECT_EQ(handle.stats().delivered, 0u);
  EXPECT_EQ(collect_stream(handle).size(), 0u);
}

// --- scheduling fairness -----------------------------------------------------

TEST(ServiceServer, ShortDeadlineJobIsNotBlockedBehindALongJob) {
  // One worker makes head-of-line blocking maximally visible: the long job
  // is mid-flight when the short job arrives, and only time-sliced EDF
  // scheduling lets the short one through.
  Server server({.n_workers = 1});
  SamplingRequest long_request = endless_request();
  long_request.config.batch = 1024;
  const JobHandle long_handle = server.submit(std::move(long_request));
  while (long_handle.stats().rounds == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  SamplingRequest short_request = small_request(formula_b(), 15, 5);
  short_request.deadline_ms = 30000.0;  // EDF priority over the batch job
  const JobHandle short_handle = server.submit(std::move(short_request));
  EXPECT_EQ(short_handle.wait(), JobStatus::kCompleted);
  // The long job is still going when the short one finishes.
  EXPECT_FALSE(job_status_terminal(long_handle.status()));
  long_handle.cancel();
  EXPECT_EQ(long_handle.wait(), JobStatus::kCancelled);
}

// --- admission control -------------------------------------------------------

TEST(ServiceAdmission, InfeasibleDeadlineIsRejectedAtSubmitWithoutCompiling) {
  ServerConfig config{.n_workers = 1};
  config.admission.enabled = true;
  config.admission.initial_job_cost_ms = 50.0;
  Server server(config);
  // Deadline far below the cost prior: infeasible before any compile.
  SamplingRequest request = small_request(formula_a());
  request.deadline_ms = 1.0;
  const JobHandle handle = server.submit(std::move(request));
  EXPECT_EQ(handle.status(), JobStatus::kRejected);  // terminal within submit()
  EXPECT_EQ(handle.wait(), JobStatus::kRejected);
  const ErrorInfo error = handle.error();
  EXPECT_EQ(error.category, ErrorCategory::kAdmission);
  EXPECT_EQ(error.site, "submit");
  EXPECT_NE(error.message.find("deadline infeasible"), std::string::npos);
  // No compile happened and the stream ends immediately.
  EXPECT_EQ(server.plan_cache_size(), 0u);
  EXPECT_EQ(handle.stats().compile_ms, 0.0);
  EXPECT_EQ(collect_stream(handle).size(), 0u);
  EXPECT_EQ(server.stats().rejected, 1u);
}

TEST(ServiceAdmission, FeasibleDeadlineIsAcceptedAndServed) {
  ServerConfig config{.n_workers = 2};
  config.admission.enabled = true;
  config.admission.initial_job_cost_ms = 5.0;
  Server server(config);
  SamplingRequest request = small_request(formula_a(), 15);
  request.deadline_ms = 60000.0;
  const JobHandle handle = server.submit(std::move(request));
  EXPECT_EQ(handle.wait(), JobStatus::kCompleted);
  EXPECT_TRUE(handle.error().ok());
  EXPECT_FALSE(handle.stats().degraded);
}

TEST(ServiceAdmission, DegradeModeShrinksTheBatchInsteadOfRejecting) {
  ServerConfig config{.n_workers = 1};
  config.admission.enabled = true;
  config.admission.initial_job_cost_ms = 50.0;
  config.admission.safety_factor = 1.0;
  config.admission.max_degrade = 64.0;
  Server server(config);
  // Infeasible as submitted (cost prior 50ms vs 10ms deadline), but a ~5x
  // batch shrink fits; admission accepts it degraded instead of rejecting.
  SamplingRequest request = small_request(formula_a(), 5);
  request.config.batch = 4096;
  request.deadline_ms = 10.0;
  const JobHandle handle = server.submit(std::move(request));
  const JobStatus status = handle.wait();
  EXPECT_NE(status, JobStatus::kRejected);
  EXPECT_TRUE(handle.stats().degraded);
  EXPECT_EQ(server.stats().degraded, 1u);
  EXPECT_TRUE(handle.error().ok());  // degraded is not an error
}

TEST(ServiceAdmission, PerClientJobQuotaRejectsTheOverflow) {
  ServerConfig config{.n_workers = 1};
  config.admission.max_client_jobs = 2;
  Server server(config);
  const JobHandle first = server.submit(endless_request(1));
  const JobHandle second = server.submit(endless_request(2));
  const JobHandle third = server.submit(endless_request(3));
  EXPECT_EQ(third.wait(), JobStatus::kRejected);
  EXPECT_EQ(third.error().category, ErrorCategory::kAdmission);
  EXPECT_NE(third.error().message.find("job quota"), std::string::npos);
  // Another client is unaffected by the first client's quota.
  SamplingRequest other = endless_request(4);
  other.client_id = 9;
  const JobHandle other_handle = server.submit(std::move(other));
  EXPECT_NE(other_handle.status(), JobStatus::kRejected);
  // Quota is released when a job finalizes: cancel one, resubmit.
  first.cancel();
  EXPECT_EQ(first.wait(), JobStatus::kCancelled);
  const JobHandle fourth = server.submit(endless_request(5));
  EXPECT_NE(fourth.status(), JobStatus::kRejected);
  server.shutdown();
}

TEST(ServiceAdmission, PerClientBankByteQuotaEnforcesReservations) {
  ServerConfig config{.n_workers = 1};
  config.admission.max_client_bank_bytes = 1 << 20;
  Server server(config);
  // Under a bank quota, an unbounded-bank request cannot be reserved.
  const JobHandle unbounded = server.submit(endless_request(1));
  EXPECT_EQ(unbounded.wait(), JobStatus::kRejected);
  EXPECT_NE(unbounded.error().message.find("max_bank_bytes"),
            std::string::npos);
  // Two half-quota reservations fit; a third does not.
  auto capped_request = [](std::uint64_t seed) {
    SamplingRequest request = endless_request(seed);
    request.max_bank_bytes = 1 << 19;
    return request;
  };
  const JobHandle a = server.submit(capped_request(2));
  const JobHandle b = server.submit(capped_request(3));
  EXPECT_NE(a.status(), JobStatus::kRejected);
  EXPECT_NE(b.status(), JobStatus::kRejected);
  const JobHandle c = server.submit(capped_request(4));
  EXPECT_EQ(c.wait(), JobStatus::kRejected);
  EXPECT_NE(c.error().message.find("bank-byte quota"), std::string::npos);
  server.shutdown();
}

TEST(ServiceAdmission, AcceptedStreamsAreIdenticalUnderRejectionChurn) {
  // An accepted job's stream is a pure function of (formula, seed, config);
  // admission rejecting other traffic around it must not perturb it.
  auto run_once = [](bool with_churn) {
    ServerConfig config{.n_workers = 2};
    config.admission.enabled = true;
    config.admission.initial_job_cost_ms = 50.0;
    Server server(config);
    SamplingRequest request = small_request(formula_a(), 20, 77);
    request.deadline_ms = 60000.0;
    const JobHandle handle = server.submit(std::move(request));
    std::vector<JobHandle> rejected;
    if (with_churn) {
      for (int i = 0; i < 16; ++i) {
        SamplingRequest doomed = small_request(formula_b(), 10, 100 + i);
        doomed.client_id = 5;
        doomed.deadline_ms = 0.5;  // infeasible against the 50ms prior
        rejected.push_back(server.submit(std::move(doomed)));
      }
    }
    EXPECT_EQ(handle.wait(), JobStatus::kCompleted);
    for (const JobHandle& r : rejected) {
      EXPECT_EQ(r.wait(), JobStatus::kRejected);
    }
    return collect_stream(handle);
  };
  const std::vector<cnf::Assignment> calm = run_once(false);
  const std::vector<cnf::Assignment> churned = run_once(true);
  EXPECT_EQ(calm, churned);  // bit-identical, order included
}

// --- error containment -------------------------------------------------------

TEST(ServiceFaults, CompileFaultFailsTheJobWithSiteAttribution) {
  ServerConfig config{.n_workers = 2};
  config.fault_spec = "compile:at=0";
  Server server(config);
  const JobHandle doomed = server.submit(small_request(formula_a(), 10, 1));
  EXPECT_EQ(doomed.wait(), JobStatus::kFailed);
  const ErrorInfo error = doomed.error();
  EXPECT_EQ(error.category, ErrorCategory::kCompile);
  EXPECT_EQ(error.site, fault_sites::kCompile);
  EXPECT_NE(error.message.find("injected fault"), std::string::npos);
  EXPECT_EQ(collect_stream(doomed).size(), 0u);  // closed, empty, no hang
  // The fleet survived: the next job (same formula — the failed compile
  // left no poisoned cache entry) completes normally.
  const JobHandle next_job = server.submit(small_request(formula_a(), 10, 2));
  EXPECT_EQ(next_job.wait(), JobStatus::kCompleted);
  EXPECT_EQ(server.stats().failed, 1u);
  EXPECT_EQ(server.stats().completed, 1u);
}

TEST(ServiceFaults, TransientFaultIsRetriedAndTheStreamIsBitIdentical) {
  auto run_once = [](const std::string& spec) {
    ServerConfig config{.n_workers = 1};
    config.fault_spec = spec;
    config.retry_backoff_ms = 1.0;
    Server server(config);
    const JobHandle handle = server.submit(small_request(formula_a(), 20, 9));
    EXPECT_EQ(handle.wait(), JobStatus::kCompleted);
    return std::make_pair(collect_stream(handle), handle.stats());
  };
  const auto [calm_stream, calm_stats] = run_once("none");
  // One transient at the slice seam: before any round ran, so the retried
  // trajectory replays from the start and delivery matches exactly.
  const auto [faulted_stream, faulted_stats] =
      run_once("slice:at=0:kind=transient");
  EXPECT_EQ(faulted_stats.retries, 1u);
  EXPECT_FALSE(faulted_stats.error.ok());  // last trouble is kept
  EXPECT_EQ(faulted_stats.error.category, ErrorCategory::kTransient);
  EXPECT_EQ(calm_stream, faulted_stream);
  EXPECT_EQ(calm_stats.n_unique, faulted_stats.n_unique);
}

TEST(ServiceFaults, BadAllocAtEngineBuildIsRetriedThenFailsWhenPersistent) {
  // Retryable category, but the fault fires on every attempt: retries are
  // exhausted and the job fails with the resource category.
  ServerConfig config{.n_workers = 1};
  config.fault_spec = "engine_alloc:every=1:kind=bad_alloc";
  config.max_retries = 2;
  config.retry_backoff_ms = 1.0;
  Server server(config);
  const JobHandle handle = server.submit(small_request(formula_a(), 10));
  EXPECT_EQ(handle.wait(), JobStatus::kFailed);
  const JobStats stats = handle.stats();
  EXPECT_EQ(stats.retries, 2u);
  EXPECT_EQ(stats.error.category, ErrorCategory::kResource);
  EXPECT_EQ(stats.error.site, fault_sites::kEngineAlloc);
  EXPECT_EQ(server.stats().retried, 2u);
}

TEST(ServiceFaults, BlockedNextWakesToEndOfStreamWhenTheJobFails) {
  ServerConfig config{.n_workers = 1};
  config.fault_spec = "slice:at=0";  // permanent fail before the first round
  Server server(config);
  SamplingRequest request = small_request(formula_a(), 10);
  std::atomic<bool> consumer_woke{false};
  const JobHandle handle = server.submit(std::move(request));
  // Consumer blocks in next() on another thread before the job fails.
  std::thread consumer([&] {
    cnf::Assignment assignment;
    const bool got = handle.stream().next(assignment);
    EXPECT_FALSE(got);  // woke to end-of-stream, not a value and not a hang
    consumer_woke.store(true);
  });
  EXPECT_EQ(handle.wait(), JobStatus::kFailed);
  consumer.join();
  EXPECT_TRUE(consumer_woke.load());
  EXPECT_EQ(handle.error().site, fault_sites::kSlice);
}

TEST(ServiceFaults, FaultedJobDoesNotDisturbItsNeighbors) {
  // Two jobs, distinct formulas (distinct compiles); a permanent fault at
  // the second compile hit kills exactly one, and the survivor's stream is
  // bit-identical to a fault-free run.
  auto run_survivor = [](const std::string& spec) {
    ServerConfig config{.n_workers = 1};  // shared worker: containment, not
    config.fault_spec = spec;             // isolation, keeps them apart
    Server server(config);
    const JobHandle survivor =
        server.submit(small_request(formula_a(), 20, 11));
    EXPECT_EQ(survivor.wait(), JobStatus::kCompleted);
    return collect_stream(survivor);
  };
  const std::vector<cnf::Assignment> calm = run_survivor("none");

  ServerConfig config{.n_workers = 1};
  config.fault_spec = "compile:at=1";
  Server server(config);
  const JobHandle survivor = server.submit(small_request(formula_a(), 20, 11));
  EXPECT_EQ(survivor.wait(), JobStatus::kCompleted);  // compile hit 0
  const JobHandle doomed = server.submit(small_request(formula_b(), 20, 12));
  EXPECT_EQ(doomed.wait(), JobStatus::kFailed);  // compile hit 1
  EXPECT_EQ(doomed.error().site, fault_sites::kCompile);
  EXPECT_EQ(collect_stream(survivor), calm);
}

}  // namespace
}  // namespace hts::service
