// Tests for the width-8 SIMD layer: lane arithmetic must match scalar float
// arithmetic bit for bit (the engine's exactness contract rides on it), and
// fast_sigmoid must honor the error bounds documented in tensor/simd.hpp.

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <vector>

#include "tensor/simd.hpp"
#include "util/rng.hpp"

namespace hts::tensor::simd {
namespace {

std::array<float, kWidth> lanes(f32x8 v) {
  std::array<float, kWidth> out;
  store(out.data(), v);
  return out;
}

/// Distance in representable floats, sign-aware (works across +/-0).
int ulp_distance(float a, float b) {
  std::int32_t ia;
  std::int32_t ib;
  std::memcpy(&ia, &a, sizeof(ia));
  std::memcpy(&ib, &b, sizeof(ib));
  if (ia < 0) ia = static_cast<std::int32_t>(0x80000000) - ia;
  if (ib < 0) ib = static_cast<std::int32_t>(0x80000000) - ib;
  const std::int64_t d = static_cast<std::int64_t>(ia) - ib;
  const std::int64_t mag = d < 0 ? -d : d;
  return mag > (1 << 30) ? (1 << 30) : static_cast<int>(mag);
}

TEST(Simd, LoadStoreRoundTrips) {
  alignas(4) float data[kWidth + 1];  // deliberately float-aligned only
  for (std::size_t i = 0; i <= kWidth; ++i) data[i] = static_cast<float>(i) * 0.5f;
  const auto out = lanes(load(data + 1));  // unaligned offset
  for (std::size_t i = 0; i < kWidth; ++i) {
    EXPECT_EQ(out[i], data[i + 1]) << i;
  }
}

TEST(Simd, ArithmeticMatchesScalarBitExactly) {
  util::Rng rng(99);
  for (int trial = 0; trial < 200; ++trial) {
    float a[kWidth];
    float b[kWidth];
    for (std::size_t i = 0; i < kWidth; ++i) {
      a[i] = rng.next_float();
      b[i] = rng.next_float();
    }
    const f32x8 va = load(a);
    const f32x8 vb = load(b);
    const auto sum = lanes(va + vb);
    const auto diff = lanes(va - vb);
    const auto prod = lanes(va * vb);
    const auto quot = lanes(va / (vb + broadcast(1.0f)));
    const auto neg = lanes(-va);
    // Single operations only: composite expressions can be FMA-contracted
    // differently for scalar and vector code in this TU.  Composite kernel
    // exactness is asserted where it matters — through the library (built
    // with -ffp-contract=off) in prob_test and engine_parity_test.
    for (std::size_t i = 0; i < kWidth; ++i) {
      ASSERT_EQ(sum[i], a[i] + b[i]);
      ASSERT_EQ(diff[i], a[i] - b[i]);
      ASSERT_EQ(prod[i], a[i] * b[i]);
      ASSERT_EQ(quot[i], a[i] / (b[i] + 1.0f));
      ASSERT_EQ(neg[i], -a[i]);
    }
  }
}

TEST(Simd, MinMaxClampLanewise) {
  const float values[kWidth] = {-3.0f, -0.5f, 0.0f, 0.5f, 1.0f, 2.0f,
                                200.0f, -200.0f};
  const f32x8 v = load(values);
  const auto clamped = lanes(min(max(v, broadcast(-1.0f)), broadcast(1.0f)));
  const float expected[kWidth] = {-1.0f, -0.5f, 0.0f, 0.5f, 1.0f, 1.0f,
                                  1.0f, -1.0f};
  for (std::size_t i = 0; i < kWidth; ++i) EXPECT_EQ(clamped[i], expected[i]) << i;
}

TEST(Simd, FastExp2MatchesExpToFloatAccuracy) {
  // Taylor remainder (~1.2e-7) plus a few ULP of polynomial rounding.
  for (double x = -30.0; x <= 30.0; x += 7e-3) {
    const float xf = static_cast<float>(x);
    const auto out = lanes(fast_exp2(broadcast(xf)));
    const double exact = std::exp2(static_cast<double>(xf));
    EXPECT_NEAR(out[0], exact, 6e-7 * exact) << "x = " << x;
  }
}

// The documented contract: <= 2^-22 absolute error everywhere, <= 48 ULP of
// the exact float sigmoid on [-16, 16].  Measured maxima are ~1.2e-7 and 16
// ULP; the asserted bounds leave headroom for other rounding environments.
TEST(Simd, FastSigmoidHonorsDocumentedBounds) {
  constexpr float kAbsBound = 2.4e-7f;  // 2^-22
  constexpr int kUlpBound = 48;
  for (double x = -30.0; x <= 30.0; x += 1.3e-4) {
    const float xf = static_cast<float>(x);
    const auto out = lanes(fast_sigmoid(broadcast(xf)));
    const float exact = 1.0f / (1.0f + std::exp(-xf));
    ASSERT_NEAR(out[0], exact, kAbsBound) << "x = " << x;
    if (xf >= -16.0f && xf <= 16.0f) {
      ASSERT_LE(ulp_distance(out[0], exact), kUlpBound) << "x = " << x;
    }
    // All lanes agree (vector path == broadcast path).
    for (std::size_t i = 1; i < kWidth; ++i) ASSERT_EQ(out[i], out[0]);
  }
}

TEST(Simd, MovemaskGtZeroMatchesScalarPredicate) {
  // harden()'s packing contract: bit i set iff lane i > 0, with the scalar
  // compare semantics exactly — +0/-0, negatives, and NaN contribute 0,
  // positive subnormals contribute 1.
  const float nan = std::numeric_limits<float>::quiet_NaN();
  const float inf = std::numeric_limits<float>::infinity();
  const float sub = std::numeric_limits<float>::denorm_min();
  const std::vector<float> values = {0.0f, -0.0f, 1.0f,  -1.0f, sub,
                                     -sub, nan,   inf,   -inf,  1e-20f,
                                     -3.4e38f,    3.4e38f};
  // Every window of 8 consecutive values, plus random shuffles.
  util::Rng rng(99);
  for (int trial = 0; trial < 64; ++trial) {
    float window[kWidth];
    for (std::size_t i = 0; i < kWidth; ++i) {
      window[i] = values[static_cast<std::size_t>(rng.next_below(
          static_cast<std::uint64_t>(values.size())))];
    }
    std::uint32_t expected = 0;
    for (std::size_t i = 0; i < kWidth; ++i) {
      if (window[i] > 0.0f) expected |= 1u << i;
    }
    EXPECT_EQ(movemask_gt_zero(load(window)), expected) << "trial " << trial;
  }
}

TEST(Simd, FastSigmoidSaturatesCleanly) {
  // Far positive: exactly 1.  Far negative: tiny but finite (>= 2^-126), no
  // NaN/Inf anywhere on the real line.
  for (const float x : {40.0f, 88.0f, 1000.0f}) {
    EXPECT_EQ(lanes(fast_sigmoid(broadcast(x)))[0], 1.0f) << x;
  }
  for (const float x : {-40.0f, -88.0f, -1000.0f}) {
    const float y = lanes(fast_sigmoid(broadcast(x)))[0];
    EXPECT_GT(y, 0.0f) << x;
    EXPECT_LT(y, 1e-15f) << x;
    EXPECT_TRUE(std::isfinite(y)) << x;
  }
}

}  // namespace
}  // namespace hts::tensor::simd
