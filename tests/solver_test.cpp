// Tests for the solver substrate: CDCL vs brute-force agreement on random
// 3-SAT sweeps, model validity, enumeration/blocking, budgets, randomized
// modes, WalkSAT, and unit propagation corner cases.

#include <gtest/gtest.h>

#include "circuit/tseitin.hpp"
#include "cnf/dimacs.hpp"
#include "solver/brute.hpp"
#include "solver/cdcl.hpp"
#include "solver/walksat.hpp"
#include "util/rng.hpp"

namespace hts::solver {
namespace {

using cnf::Lit;
using cnf::Var;

cnf::Formula random_ksat(util::Rng& rng, Var n_vars, std::size_t n_clauses,
                         std::size_t k) {
  cnf::Formula f(n_vars);
  for (std::size_t c = 0; c < n_clauses; ++c) {
    cnf::Clause clause;
    while (clause.size() < k) {
      const Lit lit(static_cast<Var>(rng.next_below(n_vars)), rng.next_bool());
      bool dup = false;
      for (const Lit l : clause) dup |= l.var() == lit.var();
      if (!dup) clause.push_back(lit);
    }
    f.add_clause(clause);
  }
  return f;
}

TEST(Cdcl, EmptyFormulaSat) {
  const cnf::Formula f(3);
  cnf::Assignment model;
  EXPECT_EQ(solve_formula(f, &model), Status::kSat);
  EXPECT_EQ(model.size(), 3u);
}

TEST(Cdcl, UnitPropagationChains) {
  // x1; x1->x2; x2->x3; ~x3 | x4  ==> all forced.
  const auto f = cnf::parse_dimacs_string(
      "p cnf 4 4\n1 0\n-1 2 0\n-2 3 0\n-3 4 0\n");
  cnf::Assignment model;
  ASSERT_EQ(solve_formula(f, &model), Status::kSat);
  EXPECT_EQ(model, (cnf::Assignment{1, 1, 1, 1}));
}

TEST(Cdcl, DetectsUnsatViaPropagation) {
  const auto f = cnf::parse_dimacs_string("p cnf 1 2\n1 0\n-1 0\n");
  EXPECT_EQ(solve_formula(f), Status::kUnsat);
}

TEST(Cdcl, DetectsUnsatRequiringConflictAnalysis) {
  // Classic pigeonhole PHP(3,2): 3 pigeons, 2 holes.
  cnf::Formula f(6);  // p_{i,h} -> var 2i+h
  for (int i = 0; i < 3; ++i) {
    f.add_clause({Lit(static_cast<Var>(2 * i), false),
                  Lit(static_cast<Var>(2 * i + 1), false)});
  }
  for (int h = 0; h < 2; ++h) {
    for (int i = 0; i < 3; ++i) {
      for (int j = i + 1; j < 3; ++j) {
        f.add_clause({Lit(static_cast<Var>(2 * i + h), true),
                      Lit(static_cast<Var>(2 * j + h), true)});
      }
    }
  }
  EXPECT_EQ(solve_formula(f), Status::kUnsat);
}

TEST(Cdcl, ModelSatisfiesFormula) {
  util::Rng rng(10);
  for (int trial = 0; trial < 20; ++trial) {
    const auto f = random_ksat(rng, 30, 90, 3);
    cnf::Assignment model;
    if (solve_formula(f, &model) == Status::kSat) {
      EXPECT_TRUE(f.satisfied_by(model)) << "trial " << trial;
    }
  }
}

class CdclVsBrute : public ::testing::TestWithParam<int> {};

TEST_P(CdclVsBrute, AgreesOnRandom3Sat) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729 + 17);
  // Around the phase transition (ratio ~4.3) for maximum discrimination.
  const Var n = 12 + static_cast<Var>(rng.next_below(6));
  const auto n_clauses = static_cast<std::size_t>(n * 43 / 10);
  const auto f = random_ksat(rng, n, n_clauses, 3);
  const bool brute_sat = count_models(f) > 0;
  cnf::Assignment model;
  const Status status = solve_formula(f, &model);
  ASSERT_NE(status, Status::kUnknown);
  EXPECT_EQ(status == Status::kSat, brute_sat);
  if (status == Status::kSat) {
    EXPECT_TRUE(f.satisfied_by(model));
  }
}

INSTANTIATE_TEST_SUITE_P(PhaseTransitionSweep, CdclVsBrute, ::testing::Range(0, 30));

TEST(Cdcl, EnumerationFindsAllModels) {
  util::Rng rng(20);
  for (int trial = 0; trial < 10; ++trial) {
    const auto f = random_ksat(rng, 10, 25, 3);
    const auto expected = enumerate_models(f);

    CdclSolver solver;
    solver.add_formula(f);
    std::set<cnf::Assignment> found;
    while (solver.solve() == Status::kSat) {
      found.insert(solver.model());
      if (!solver.block_model()) break;
      ASSERT_LE(found.size(), expected.size() + 1);
    }
    EXPECT_EQ(found.size(), expected.size()) << "trial " << trial;
    for (const auto& model : expected) {
      EXPECT_TRUE(found.contains(model));
    }
  }
}

TEST(Cdcl, ProjectedBlockingEnumeratesProjections) {
  // f = (x1 | x2) & (x3 | ~x3): project onto {x1, x2} -> 3 distinct pairs.
  const auto f = cnf::parse_dimacs_string("p cnf 3 1\n1 2 0\n");
  CdclSolver solver;
  solver.add_formula(f);
  std::set<std::pair<int, int>> pairs;
  while (solver.solve() == Status::kSat) {
    pairs.insert({solver.model()[0], solver.model()[1]});
    if (!solver.block_model({0, 1})) break;
  }
  EXPECT_EQ(pairs.size(), 3u);
}

TEST(Cdcl, AssumptionsRespected) {
  const auto f = cnf::parse_dimacs_string("p cnf 3 1\n1 2 3 0\n");
  CdclSolver solver;
  solver.add_formula(f);
  ASSERT_EQ(solver.solve({Lit(0, true), Lit(1, true)}), Status::kSat);
  EXPECT_EQ(solver.model()[0], 0);
  EXPECT_EQ(solver.model()[1], 0);
  EXPECT_EQ(solver.model()[2], 1);
  // Conflicting assumptions on an implied unit.
  const auto g = cnf::parse_dimacs_string("p cnf 1 1\n1 0\n");
  CdclSolver solver2;
  solver2.add_formula(g);
  EXPECT_EQ(solver2.solve({Lit(0, true)}), Status::kUnsat);
}

TEST(Cdcl, ConflictBudgetInterrupts) {
  util::Rng rng(30);
  CdclConfig config;
  config.conflict_budget = 1;
  CdclSolver solver(config);
  // A formula requiring real search: random 3-SAT near phase transition.
  solver.add_formula(random_ksat(rng, 40, 170, 3));
  const Status status = solver.solve();
  // With a 1-conflict budget, either it got lucky or it must report kUnknown.
  EXPECT_TRUE(status == Status::kUnknown || status == Status::kSat);
}

TEST(Cdcl, RandomizedModesStillSound) {
  util::Rng rng(40);
  for (int trial = 0; trial < 10; ++trial) {
    const auto f = random_ksat(rng, 20, 70, 3);
    const bool brute_sat = count_models(f) > 0;
    CdclConfig config;
    config.polarity = CdclConfig::Polarity::kRandom;
    config.random_decision_freq = 0.3;
    config.seed = rng.next_u64();
    CdclSolver solver(config);
    solver.add_formula(f);
    const Status status = solver.solve();
    ASSERT_NE(status, Status::kUnknown);
    EXPECT_EQ(status == Status::kSat, brute_sat) << "trial " << trial;
    if (status == Status::kSat) {
      EXPECT_TRUE(f.satisfied_by(solver.model()));
    }
  }
}

TEST(Cdcl, ReshuffleChangesModels) {
  // Large solution space: repeated solves after reshuffle should not always
  // return the same model.
  cnf::Formula f(16);
  for (Var v = 0; v + 1 < 16; v += 2) {
    f.add_clause({Lit(v, false), Lit(v + 1, false)});
  }
  CdclConfig config;
  config.polarity = CdclConfig::Polarity::kRandom;
  CdclSolver solver(config);
  solver.add_formula(f);
  util::Rng rng(50);
  std::set<cnf::Assignment> models;
  for (int i = 0; i < 20; ++i) {
    solver.reshuffle(rng.next_u64());
    ASSERT_EQ(solver.solve(), Status::kSat);
    models.insert(solver.model());
  }
  EXPECT_GT(models.size(), 3u);
}

TEST(Cdcl, StatsAccumulate) {
  util::Rng rng(60);
  CdclSolver solver;
  solver.add_formula(random_ksat(rng, 30, 128, 3));
  (void)solver.solve();
  EXPECT_GT(solver.stats().propagations, 0u);
}

TEST(Cdcl, ManySolveCallsStayConsistent) {
  // Incremental usage: solve, block, solve... with learned clauses kept.
  util::Rng rng(70);
  const auto f = random_ksat(rng, 14, 40, 3);
  const std::uint64_t total = count_models(f);
  CdclSolver solver;
  solver.add_formula(f);
  std::uint64_t found = 0;
  while (solver.solve() == Status::kSat) {
    EXPECT_TRUE(f.satisfied_by(solver.model()));
    ++found;
    if (!solver.block_model()) break;
    ASSERT_LE(found, total);
  }
  EXPECT_EQ(found, total);
}

TEST(Cdcl, TseitinInstancesSolvable) {
  // End-to-end: circuit -> CNF -> solve; model must satisfy the encoding.
  util::Rng rng(80);
  circuit::Circuit c;
  for (int i = 0; i < 6; ++i) c.add_input();
  for (int g = 0; g < 20; ++g) {
    const auto a = static_cast<circuit::SignalId>(rng.next_below(c.n_signals()));
    auto b = static_cast<circuit::SignalId>(rng.next_below(c.n_signals()));
    if (a == b) {
      c.add_gate(circuit::GateType::kNot, {a});
    } else {
      c.add_gate(rng.next_bool() ? circuit::GateType::kAnd : circuit::GateType::kXor,
                 {a, b});
    }
  }
  std::vector<std::uint8_t> in(6);
  for (auto& bit : in) bit = rng.next_bool() ? 1 : 0;
  const auto values = c.eval(in);
  c.add_output(static_cast<circuit::SignalId>(c.n_signals() - 1),
               values[c.n_signals() - 1] != 0);
  const auto enc = circuit::tseitin_encode(c);
  cnf::Assignment model;
  ASSERT_EQ(solve_formula(enc.formula, &model), Status::kSat);
  EXPECT_TRUE(enc.formula.satisfied_by(model));
}

// --- brute force -----------------------------------------------------------------

TEST(Brute, CountsTinyFormulas) {
  const auto f = cnf::parse_dimacs_string("p cnf 2 1\n1 2 0\n");
  EXPECT_EQ(count_models(f), 3u);
  const auto g = cnf::parse_dimacs_string("p cnf 3 0\n");
  EXPECT_EQ(count_models(g), 8u);
}

TEST(Brute, EarlyStopWorks) {
  const auto f = cnf::parse_dimacs_string("p cnf 3 0\n");
  std::size_t visited = 0;
  for_each_model(f, [&](const cnf::Assignment&) { return ++visited < 3; });
  EXPECT_EQ(visited, 3u);
}

// --- WalkSAT ---------------------------------------------------------------------

TEST(WalkSat, SolvesSatisfiableInstances) {
  util::Rng rng(90);
  int solved = 0;
  for (int trial = 0; trial < 10; ++trial) {
    const auto f = random_ksat(rng, 20, 60, 3);  // easy ratio 3.0
    if (count_models(f) == 0) continue;
    WalkSatConfig config;
    config.seed = rng.next_u64();
    config.max_flips = 200000;
    WalkSat walksat(f, config);
    const auto model = walksat.search();
    if (model.has_value()) {
      EXPECT_TRUE(f.satisfied_by(*model));
      ++solved;
    }
  }
  EXPECT_GT(solved, 0);
}

TEST(WalkSat, RespectsDeadline) {
  util::Rng rng(100);
  // UNSAT instance: WalkSAT can never finish; deadline must stop it.
  const auto f = cnf::parse_dimacs_string(
      "p cnf 2 4\n1 2 0\n1 -2 0\n-1 2 0\n-1 -2 0\n");
  WalkSatConfig config;
  config.max_flips = ~0ULL;
  WalkSat walksat(f, config);
  const util::Deadline deadline(50.0);
  const auto model = walksat.search(&deadline);
  EXPECT_FALSE(model.has_value());
}

TEST(WalkSat, FlipBookkeepingConsistent) {
  util::Rng rng(110);
  const auto f = random_ksat(rng, 15, 40, 3);
  WalkSatConfig config;
  config.max_flips = 500;
  WalkSat walksat(f, config);
  (void)walksat.search();
  EXPECT_GT(walksat.total_flips(), 0u);
}

}  // namespace
}  // namespace hts::solver
