// Tests for the telemetry subsystem: sharded counter/histogram exactness
// under the thread pool, snapshot-while-writing safety (the TSan CI job
// runs this binary), Prometheus/JSON export shape, Chrome-trace event
// well-formedness (monotone timestamps, balanced per-job async spans,
// submit -> finalize coverage), the hard determinism contract (solution
// streams bit-identical with telemetry on and off), the plan-cache
// compile-billing fix (compile_ms charged once, waiters billed as
// cache_wait), and the chaos interplay (injected faults and retries appear
// as trace events named after their seam).

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "cnf/dimacs.hpp"
#include "service/server.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace hts::telemetry {
namespace {

// Flags are process globals; every test that flips them restores the
// previous state so test order never matters (and the default-off contract
// holds for the rest of the suite).
class TelemetryGuard {
 public:
  TelemetryGuard(bool metrics, bool trace)
      : metrics_before_(metrics_enabled()), trace_before_(trace_enabled()) {
    set_metrics_enabled(metrics);
    set_trace_enabled(trace);
    Registry::global().reset_values();
    TraceSink::global().clear();
  }
  ~TelemetryGuard() {
    set_metrics_enabled(metrics_before_);
    set_trace_enabled(trace_before_);
  }

 private:
  bool metrics_before_;
  bool trace_before_;
};

cnf::Formula small_formula() {
  return cnf::parse_dimacs_string("p cnf 7 3\n1 2 0\n3 4 0\n-1 -3 0\n");
}

service::SamplingRequest small_request(std::size_t target = 20,
                                       std::uint64_t seed = 123) {
  service::SamplingRequest request;
  request.formula = small_formula();
  request.seed = seed;
  request.target_uniques = target;
  request.config.batch = 128;
  request.config.iterations = 3;
  return request;
}

std::vector<cnf::Assignment> collect_stream(const service::JobHandle& handle) {
  std::vector<cnf::Assignment> solutions;
  cnf::Assignment solution;
  while (handle.stream().next(solution)) {
    solutions.push_back(std::move(solution));
  }
  return solutions;
}

/// Snapshot entry lookup by metric name (first label set wins).
const MetricSnapshot* find_metric(const std::vector<MetricSnapshot>& all,
                                  const std::string& name) {
  for (const MetricSnapshot& m : all) {
    if (m.name == name) return &m;
  }
  return nullptr;
}

// --- registry primitives -----------------------------------------------------

TEST(TelemetryMetrics, ConcurrentCounterAndHistogramExactness) {
  Registry& registry = Registry::global();
  Counter& counter = registry.counter("test_exact_total");
  Histogram& histogram =
      registry.histogram("test_exact_hist", {1.0, 10.0, 100.0});
  counter.reset();
  histogram.reset();

  constexpr std::size_t kEvents = 200000;
  util::ThreadPool pool(4);
  pool.parallel_for(kEvents, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      counter.increment();
      histogram.observe(static_cast<double>(i % 200));
    }
  });

  EXPECT_EQ(counter.value(), kEvents);
  EXPECT_EQ(histogram.count(), kEvents);
  const std::vector<std::uint64_t> buckets = histogram.bucket_counts();
  ASSERT_EQ(buckets.size(), 4u);  // 3 finite bounds + the +inf bucket
  // i % 200 is uniform: per cycle of 200 observations, 2 land <= 1
  // (i = 0, 1), 9 more in (1, 10], 90 more in (10, 100], 99 above.
  EXPECT_EQ(buckets[0], kEvents / 200 * 2);
  EXPECT_EQ(buckets[1], kEvents / 200 * 9);
  EXPECT_EQ(buckets[2], kEvents / 200 * 90);
  EXPECT_EQ(buckets[3], kEvents / 200 * 99);
  EXPECT_EQ(buckets[0] + buckets[1] + buckets[2] + buckets[3], kEvents);
}

TEST(TelemetryMetrics, SnapshotWhileWritingIsSafeAndMonotone) {
  Registry& registry = Registry::global();
  Counter& counter = registry.counter("test_snapshot_total");
  Histogram& histogram = registry.histogram("test_snapshot_hist", {0.5});
  counter.reset();
  histogram.reset();

  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 3; ++t) {
    writers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        counter.increment();
        histogram.observe(1.0);
      }
    });
  }
  // Concurrent snapshots must be safe (TSan pins this) and totals must be
  // monotone: a snapshot can only ever see more events than the last.
  std::uint64_t last_count = 0;
  double last_value = 0.0;
  for (int i = 0; i < 50; ++i) {
    const std::vector<MetricSnapshot> snap = registry.snapshot();
    const MetricSnapshot* c = find_metric(snap, "test_snapshot_total");
    const MetricSnapshot* h = find_metric(snap, "test_snapshot_hist");
    ASSERT_NE(c, nullptr);
    ASSERT_NE(h, nullptr);
    EXPECT_GE(c->value, last_value);
    EXPECT_GE(h->count, last_count);
    last_value = c->value;
    last_count = h->count;
    (void)registry.render_prometheus();
    (void)registry.snapshot_json();
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& w : writers) w.join();
  EXPECT_EQ(counter.value(), histogram.count());
}

TEST(TelemetryMetrics, GaugeTracksLevelAndHistogramPercentiles) {
  Registry& registry = Registry::global();
  Gauge& gauge = registry.gauge("test_level");
  gauge.reset();
  gauge.add(5);
  gauge.sub(2);
  EXPECT_EQ(gauge.value(), 3);
  gauge.set(-7);
  EXPECT_EQ(gauge.value(), -7);

  Histogram& histogram =
      registry.histogram("test_pct_hist", {10.0, 20.0, 50.0, 100.0});
  histogram.reset();
  for (int i = 1; i <= 100; ++i) histogram.observe(static_cast<double>(i));
  // Uniform 1..100: p50 lands in the (20, 50] bucket, p99 in (50, 100].
  EXPECT_GT(histogram.percentile(50.0), 20.0);
  EXPECT_LE(histogram.percentile(50.0), 50.0);
  EXPECT_GT(histogram.percentile(99.0), 50.0);
  EXPECT_LE(histogram.percentile(99.0), 100.0);
  EXPECT_GE(histogram.percentile(0.0), 0.0);
}

TEST(TelemetryMetrics, PrometheusRenderingShape) {
  Registry& registry = Registry::global();
  registry.counter("test_render_total", {{"client", "a\"b\\c\nd"}}).add(3);
  registry.gauge("test_render_depth").set(2);
  registry.histogram("test_render_ms", {0.1, 1.0}).observe(0.5);
  const std::string text = registry.render_prometheus();

  EXPECT_NE(text.find("# TYPE test_render_total counter"), std::string::npos);
  EXPECT_NE(text.find("# TYPE test_render_depth gauge"), std::string::npos);
  EXPECT_NE(text.find("# TYPE test_render_ms histogram"), std::string::npos);
  // Label values escape backslash, quote, and newline per the exposition
  // format.
  EXPECT_NE(text.find("client=\"a\\\"b\\\\c\\nd\""), std::string::npos);
  // Histograms expand to cumulative buckets with a +Inf catch-all plus
  // _sum/_count, and bounds render shortest-round-trip ("0.1", not
  // "0.10000000000000001").
  EXPECT_NE(text.find("test_render_ms_bucket{le=\"0.1\"} 0"),
            std::string::npos);
  EXPECT_NE(text.find("test_render_ms_bucket{le=\"1\"} 1"), std::string::npos);
  EXPECT_NE(text.find("test_render_ms_bucket{le=\"+Inf\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("test_render_ms_count 1"), std::string::npos);

  const std::string json = Registry::global().snapshot_json();
  EXPECT_NE(json.find("\"name\":\"test_render_total\""), std::string::npos);
  EXPECT_NE(json.find("\"type\":\"histogram\""), std::string::npos);
}

// --- trace sink --------------------------------------------------------------

TEST(TelemetryTrace, EventsAreTimestampSortedAndJsonWellFormed) {
  TelemetryGuard guard(/*metrics=*/false, /*trace=*/true);
  TraceSink& sink = TraceSink::global();
  sink.set_thread_name("main-test");
  const std::uint64_t t0 = util::monotonic_ns();
  sink.complete("phase_a", "test", t0, t0 + 1000);
  sink.async_begin("work", "test", 42, t0 + 100);
  sink.async_instant("mark", "test", 42, t0 + 500);
  sink.async_end("work", "test", 42, t0 + 900);
  std::thread other([&] { sink.instant("other_thread", "test"); });
  other.join();

  const std::vector<TraceEvent> events = sink.snapshot_events();
  ASSERT_GE(events.size(), 5u);
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].ts_ns, events[i].ts_ns);  // merged sort order
  }
  // Two distinct recording threads got two distinct tids.
  EXPECT_NE(events.front().tid, 0u);
  bool saw_second_tid = false;
  for (const TraceEvent& e : events) {
    if (e.tid != events.front().tid) saw_second_tid = true;
  }
  EXPECT_TRUE(saw_second_tid);

  const std::string json = sink.render_chrome_json();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"b\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"e\""), std::string::npos);
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("main-test"), std::string::npos);
  EXPECT_NE(json.find("\"clock\":\"monotonic_ns\""), std::string::npos);
  EXPECT_EQ(sink.dropped(), 0u);
}

// --- service integration -----------------------------------------------------

TEST(TelemetryService, FleetRunEmitsMetricsAndBalancedJobSpans) {
  TelemetryGuard guard(/*metrics=*/true, /*trace=*/true);
  constexpr std::size_t kJobs = 4;
  std::vector<service::JobHandle> handles;
  {
    service::Server server({.n_workers = 2});
    for (std::size_t j = 0; j < kJobs; ++j) {
      handles.push_back(server.submit(small_request(20, 100 + j)));
    }
    for (const service::JobHandle& handle : handles) {
      EXPECT_EQ(handle.wait(), service::JobStatus::kCompleted);
    }

    // Live pull: the snapshot's Prometheus text cross-checks JobStats.
    const service::StatsSnapshot snapshot = server.stats_snapshot();
    EXPECT_EQ(snapshot.server.completed, kJobs);
    EXPECT_EQ(snapshot.queue_depth, 0u);
    EXPECT_NE(snapshot.metrics_prometheus.find("hts_scheduler_slice_ms"),
              std::string::npos);
    EXPECT_NE(snapshot.metrics_json.find("hts_plan_cache_hits_total"),
              std::string::npos);
  }

  const std::vector<MetricSnapshot> snap = Registry::global().snapshot();
  const MetricSnapshot* slices = find_metric(snap, "hts_scheduler_slice_ms");
  ASSERT_NE(slices, nullptr);
  EXPECT_GE(slices->count, kJobs);  // every job ran at least one slice
  const MetricSnapshot* delivered =
      find_metric(snap, "hts_stream_delivered_total");
  ASSERT_NE(delivered, nullptr);
  std::uint64_t delivered_stats = 0;
  for (const service::JobHandle& handle : handles) {
    delivered_stats += handle.stats().delivered;
  }
  EXPECT_EQ(static_cast<std::uint64_t>(delivered->value), delivered_stats);
  const MetricSnapshot* rounds = find_metric(snap, "hts_gd_rounds_total");
  ASSERT_NE(rounds, nullptr);
  EXPECT_GT(rounds->value, 0.0);
  const MetricSnapshot* finalized =
      find_metric(snap, "hts_jobs_finalized_total");
  ASSERT_NE(finalized, nullptr);
  EXPECT_EQ(finalized->labels,
            Labels({{"status", "completed"}}));
  EXPECT_EQ(static_cast<std::uint64_t>(finalized->value), kJobs);
  const MetricSnapshot* depth = find_metric(snap, "hts_scheduler_queue_depth");
  ASSERT_NE(depth, nullptr);
  EXPECT_EQ(depth->value, 0.0);  // every enqueue was matched by a pop

  // Per-job async tracks: balanced nesting, "job" covers submit -> finalize.
  const std::vector<TraceEvent> events = TraceSink::global().snapshot_events();
  std::map<std::uint64_t, std::vector<const TraceEvent*>> per_job;
  for (const TraceEvent& e : events) {
    if (std::string(e.cat) == "job") per_job[e.id].push_back(&e);
  }
  EXPECT_EQ(per_job.size(), kJobs);
  for (const auto& [id, track] : per_job) {
    ASSERT_GE(track.size(), 2u);
    EXPECT_STREQ(track.front()->name, "job");
    EXPECT_EQ(track.front()->phase, TraceEvent::Phase::kAsyncBegin);
    EXPECT_STREQ(track.back()->name, "job");
    EXPECT_EQ(track.back()->phase, TraceEvent::Phase::kAsyncEnd);
    int depth_now = 0;
    std::map<std::string, int> open;
    bool saw_status = false;
    for (const TraceEvent* e : track) {
      if (e->phase == TraceEvent::Phase::kAsyncBegin) {
        ++depth_now;
        ++open[e->name];
      } else if (e->phase == TraceEvent::Phase::kAsyncEnd) {
        --depth_now;
        --open[e->name];
        EXPECT_GE(open[e->name], 0) << "unmatched end of " << e->name;
      } else if (std::string(e->name) == "completed") {
        saw_status = true;
      }
      EXPECT_GE(depth_now, 0);
    }
    EXPECT_EQ(depth_now, 0) << "job " << id << " track left spans open";
    EXPECT_TRUE(saw_status) << "job " << id << " missing terminal status";
  }
  EXPECT_EQ(TraceSink::global().dropped(), 0u);
}

TEST(TelemetryService, StreamsBitIdenticalWithTelemetryOnAndOff) {
  constexpr std::size_t kJobs = 3;
  auto run_fleet = [&] {
    std::vector<std::vector<cnf::Assignment>> streams(kJobs);
    service::Server server({.n_workers = 2});
    std::vector<service::JobHandle> handles;
    for (std::size_t j = 0; j < kJobs; ++j) {
      handles.push_back(server.submit(small_request(25, 7 * (j + 1))));
    }
    for (std::size_t j = 0; j < kJobs; ++j) {
      EXPECT_EQ(handles[j].wait(), service::JobStatus::kCompleted);
      streams[j] = collect_stream(handles[j]);
    }
    return streams;
  };

  std::vector<std::vector<cnf::Assignment>> off_streams;
  {
    TelemetryGuard guard(/*metrics=*/false, /*trace=*/false);
    off_streams = run_fleet();
  }
  std::vector<std::vector<cnf::Assignment>> on_streams;
  {
    TelemetryGuard guard(/*metrics=*/true, /*trace=*/true);
    on_streams = run_fleet();
  }
  // The hard contract: telemetry reads clocks and counters, never RNG or
  // ordering, so each job's delivered stream is bit-identical.
  for (std::size_t j = 0; j < kJobs; ++j) {
    EXPECT_FALSE(off_streams[j].empty());
    EXPECT_EQ(off_streams[j], on_streams[j]) << "job " << j;
  }
}

TEST(TelemetryService, DisabledTelemetryRecordsNothing) {
  TelemetryGuard guard(/*metrics=*/false, /*trace=*/false);
  {
    service::Server server({.n_workers = 2});
    const service::JobHandle handle = server.submit(small_request());
    EXPECT_EQ(handle.wait(), service::JobStatus::kCompleted);
  }
  for (const MetricSnapshot& m : Registry::global().snapshot()) {
    if (m.name.rfind("hts_", 0) != 0) continue;  // test-local metrics
    EXPECT_EQ(m.value, 0.0) << m.name;
    EXPECT_EQ(m.count, 0u) << m.name;
  }
  EXPECT_TRUE(TraceSink::global().snapshot_events().empty());
}

TEST(TelemetryService, CompileBilledOnceWaitersBilledAsCacheWait) {
  TelemetryGuard guard(/*metrics=*/true, /*trace=*/false);
  // 8 jobs, one shared formula/options key: exactly one request compiles,
  // the other seven hit (some as in-flight waiters).  The compile cost must
  // be charged exactly once — waiters bill the blocked time as cache_wait,
  // not as a duplicate compile_ms (the double-accounting regression).
  constexpr std::size_t kJobs = 8;
  service::Server server({.n_workers = 4});
  std::vector<service::JobHandle> handles;
  for (std::size_t j = 0; j < kJobs; ++j) {
    handles.push_back(server.submit(small_request(15, 31 * (j + 1))));
  }
  std::size_t misses = 0;
  double billed_compile_ms = 0.0;
  for (const service::JobHandle& handle : handles) {
    EXPECT_EQ(handle.wait(), service::JobStatus::kCompleted);
    const service::JobStats stats = handle.stats();
    if (!stats.plan_cache_hit) {
      ++misses;
      EXPECT_GT(stats.compile_ms, 0.0);
      billed_compile_ms += stats.compile_ms;
    } else {
      // A hit never pays compile time, no matter how long it blocked on the
      // in-flight build; the wait is its own line item.
      EXPECT_EQ(stats.compile_ms, 0.0);
      EXPECT_GE(stats.cache_wait_ms, 0.0);
    }
  }
  EXPECT_EQ(misses, 1u);  // in-flight dedup: one compile fleet-wide

  const service::PlanCache::Stats cache = server.plan_cache_stats();
  EXPECT_EQ(cache.misses, 1u);
  EXPECT_EQ(cache.hits, kJobs - 1);
  EXPECT_LE(cache.inflight_waits, cache.hits);
  const std::vector<MetricSnapshot> snap = Registry::global().snapshot();
  const MetricSnapshot* hits = find_metric(snap, "hts_plan_cache_hits_total");
  ASSERT_NE(hits, nullptr);
  EXPECT_EQ(static_cast<std::uint64_t>(hits->value), cache.hits);
}

TEST(TelemetryService, BackpressureStallIsMeasured) {
  TelemetryGuard guard(/*metrics=*/true, /*trace=*/false);
  service::Server server({.n_workers = 1});
  service::SamplingRequest request = small_request(10, 99);
  request.stream_capacity = 1;  // force the producer to wait on the consumer
  const service::JobHandle handle = server.submit(std::move(request));
  // Let the producer fill the 1-slot buffer and block, then drain slowly.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  const std::vector<cnf::Assignment> solutions = collect_stream(handle);
  EXPECT_EQ(handle.wait(), service::JobStatus::kCompleted);
  // Delivery is everything the finishing harvest banked, >= the target.
  EXPECT_GE(solutions.size(), 10u);

  const std::vector<MetricSnapshot> snap = Registry::global().snapshot();
  const MetricSnapshot* stalls = find_metric(snap, "hts_stream_stall_ms");
  ASSERT_NE(stalls, nullptr);
  EXPECT_GT(stalls->count, 0u);
  EXPECT_GT(stalls->sum, 0.0);
  const MetricSnapshot* delivered_metric =
      find_metric(snap, "hts_stream_delivered_total");
  ASSERT_NE(delivered_metric, nullptr);
  EXPECT_EQ(static_cast<std::uint64_t>(delivered_metric->value),
            solutions.size());
}

TEST(TelemetryService, InjectedFaultsAndRetriesAppearInTraceAndMetrics) {
  TelemetryGuard guard(/*metrics=*/true, /*trace=*/true);
  service::ServerConfig config{.n_workers = 2};
  // Deterministic injector: every 3rd slice check trips a transient fault,
  // so some jobs retry and recover (max_retries default is 2).
  config.fault_spec = "slice:every=3:kind=transient";
  config.retry_backoff_ms = 1.0;
  std::vector<service::JobHandle> handles;
  service::Server server(std::move(config));
  for (std::size_t j = 0; j < 4; ++j) {
    handles.push_back(server.submit(small_request(15, 17 * (j + 1))));
  }
  std::uint64_t retries = 0;
  for (const service::JobHandle& handle : handles) {
    (void)handle.wait();
    retries += handle.stats().retries;
  }
  ASSERT_GT(retries, 0u) << "fault spec never fired; test is vacuous";

  // The injector's firings are a metric keyed by seam name...
  const std::vector<MetricSnapshot> snap = Registry::global().snapshot();
  bool saw_injection = false;
  for (const MetricSnapshot& m : snap) {
    if (m.name != "hts_fault_injections_total") continue;
    ASSERT_EQ(m.labels.size(), 1u);
    EXPECT_EQ(m.labels[0].first, "site");
    EXPECT_EQ(m.labels[0].second, "slice");
    EXPECT_GT(m.value, 0.0);
    saw_injection = true;
  }
  EXPECT_TRUE(saw_injection);
  const MetricSnapshot* retried =
      find_metric(snap, "hts_scheduler_retried_total");
  ASSERT_NE(retried, nullptr);

  // ...and every fault/retry lands on the job's async track, named after
  // the seam it hit.
  std::uint64_t fault_instants = 0;
  std::uint64_t retry_instants = 0;
  for (const TraceEvent& e : TraceSink::global().snapshot_events()) {
    if (e.phase != TraceEvent::Phase::kAsyncInstant) continue;
    if (std::string(e.name) == service::fault_sites::kSlice) ++fault_instants;
    if (std::string(e.name) == "retry") ++retry_instants;
  }
  EXPECT_GT(fault_instants, 0u);
  EXPECT_EQ(retry_instants, retries);
}

}  // namespace
}  // namespace hts::telemetry
