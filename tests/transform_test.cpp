// Tests for Algorithm 1 (CNF -> multi-level multi-output function):
// signature recovery for every primary gate type, the paper's worked
// examples (Eq. 5 MUX block, the Fig. 1 instance), under-specified blocks,
// constant promotion, and randomized equisatisfiability round-trips against
// brute-force enumeration.

#include <gtest/gtest.h>

#include "circuit/tseitin.hpp"
#include "cnf/dimacs.hpp"
#include "solver/brute.hpp"
#include "transform/transform.hpp"
#include "util/rng.hpp"

namespace hts::transform {
namespace {

using circuit::GateType;
using cnf::Lit;
using cnf::Var;

/// Counts models of `formula` and compares with the number of distinct
/// satisfying input assignments of the transformed circuit (the two must
/// coincide: the transformation is a bijection on solutions).
void expect_equisatisfiable(const cnf::Formula& formula, const Result& result) {
  ASSERT_LE(formula.n_vars(), solver::kMaxBruteVars);
  const std::uint64_t cnf_models = solver::count_models(formula);

  const circuit::Circuit& c = result.circuit;
  ASSERT_LE(c.n_inputs(), 22u);
  std::uint64_t circuit_models = 0;
  std::vector<std::uint8_t> in(c.n_inputs());
  for (std::uint64_t bits = 0; bits < (1ULL << c.n_inputs()); ++bits) {
    for (std::size_t i = 0; i < in.size(); ++i) {
      in[i] = static_cast<std::uint8_t>((bits >> i) & 1);
    }
    const auto values = c.eval(in);
    if (!c.outputs_satisfied(values)) continue;
    ++circuit_models;
    // Every circuit solution must project to a CNF model.
    EXPECT_TRUE(formula.satisfied_by(result.project(values)));
  }
  EXPECT_EQ(circuit_models, cnf_models);
}

// --- primary gate signatures (Eqs. 1-4) -----------------------------------------

TEST(Transform, RecoversInverter) {
  // Eq. (1): f(x) = ~x as (f | x)(~f | ~x); vars: x=1, f=2 (DIMACS).
  const auto f = cnf::parse_dimacs_string("p cnf 2 2\n2 1 0\n-2 -1 0\n");
  const Result r = transform_cnf(f);
  EXPECT_EQ(r.stats.n_gate_definitions, 1u);
  EXPECT_EQ(r.stats.n_flushed_blocks, 0u);
  expect_equisatisfiable(f, r);
}

TEST(Transform, RecoversWideOr) {
  // Eq. (2) with n=4: f = x1|x2|x3|x4, f is var 5.
  const auto f = cnf::parse_dimacs_string(
      "p cnf 5 5\n-5 1 2 3 4 0\n5 -1 0\n5 -2 0\n5 -3 0\n5 -4 0\n");
  const Result r = transform_cnf(f);
  EXPECT_EQ(r.stats.n_gate_definitions, 1u);
  // One OR gate of 4 fanins: 3 ops vs CNF's many.
  EXPECT_GT(r.stats.ops_reduction(), 1.0);
  expect_equisatisfiable(f, r);
}

TEST(Transform, RecoversWideAnd) {
  // Eq. (3) with n=3: f = x1&x2&x3, f is var 4.
  const auto f = cnf::parse_dimacs_string(
      "p cnf 4 4\n4 -1 -2 -3 0\n-4 1 0\n-4 2 0\n-4 3 0\n");
  const Result r = transform_cnf(f);
  EXPECT_EQ(r.stats.n_gate_definitions, 1u);
  expect_equisatisfiable(f, r);
}

TEST(Transform, RecoversXor2) {
  // Eq. (4): f = x1 ^ x2 with f = var 3 -> 4 clauses.
  const auto f = cnf::parse_dimacs_string(
      "p cnf 3 4\n-3 1 2 0\n-3 -1 -2 0\n3 -1 2 0\n3 1 -2 0\n");
  const Result r = transform_cnf(f);
  EXPECT_EQ(r.stats.n_gate_definitions, 1u);
  expect_equisatisfiable(f, r);
}

TEST(Transform, RecoversPaperEq5MuxBlock) {
  // The paper's Eq. (5) from '75-10-1-q':
  // x5 = (x107 & x4) | (x108 & ~x4), renumbered to x4->1, x107->2, x108->3,
  // x5->4.
  const auto f = cnf::parse_dimacs_string(
      "p cnf 4 4\n-1 -2 4 0\n-1 2 -4 0\n1 -3 4 0\n1 3 -4 0\n");
  const Result r = transform_cnf(f);
  EXPECT_EQ(r.stats.n_gate_definitions, 1u);
  EXPECT_EQ(r.roles[3], VarRole::kIntermediate);  // x5 became the gate output
  EXPECT_EQ(r.roles[0], VarRole::kPrimaryInput);
  EXPECT_EQ(r.roles[1], VarRole::kPrimaryInput);
  EXPECT_EQ(r.roles[2], VarRole::kPrimaryInput);
  expect_equisatisfiable(f, r);
}

// --- constants, under-specification, flushing -----------------------------------

TEST(Transform, UnitClauseOnFreshVarBecomesOutput) {
  const auto f = cnf::parse_dimacs_string("p cnf 1 1\n1 0\n");
  const Result r = transform_cnf(f);
  EXPECT_EQ(r.roles[0], VarRole::kPrimaryOutput);
  EXPECT_EQ(r.stats.n_const_promotions, 1u);
  expect_equisatisfiable(f, r);
}

TEST(Transform, NegativeUnitClausePinsToZero) {
  const auto f = cnf::parse_dimacs_string("p cnf 2 2\n-1 0\n1 2 0\n");
  const Result r = transform_cnf(f);
  expect_equisatisfiable(f, r);
}

TEST(Transform, UnitOnIntermediatePromotesToOutput) {
  // Fig. 1 tail: gate definition for x10-like variable, then unit clause.
  // y = a | b (y=3), then (y).
  const auto f = cnf::parse_dimacs_string(
      "p cnf 3 4\n-3 1 2 0\n3 -1 0\n3 -2 0\n3 0\n");
  const Result r = transform_cnf(f);
  EXPECT_EQ(r.stats.n_gate_definitions, 1u);
  EXPECT_EQ(r.roles[2], VarRole::kPrimaryOutput);
  EXPECT_EQ(r.n_primary_outputs(), 1u);
  expect_equisatisfiable(f, r);
}

TEST(Transform, UnderSpecifiedBareClauseFlushes) {
  // (x1 | x2) with no defining structure: the paper's under-specified case —
  // an auxiliary output constrained to 1.
  const auto f = cnf::parse_dimacs_string("p cnf 2 1\n1 2 0\n");
  const Result r = transform_cnf(f);
  EXPECT_EQ(r.stats.n_flushed_blocks, 1u);
  EXPECT_EQ(r.n_primary_outputs(), 1u);
  expect_equisatisfiable(f, r);
}

TEST(Transform, TautologicalBlockDropped) {
  const auto f = cnf::parse_dimacs_string("p cnf 2 1\n1 -1 2 0\n");
  const Result r = transform_cnf(f);
  EXPECT_FALSE(r.proven_unsat);
  expect_equisatisfiable(f, r);
}

TEST(Transform, ContradictionDetected) {
  const auto f = cnf::parse_dimacs_string("p cnf 1 2\n1 0\n-1 0\n");
  const Result r = transform_cnf(f);
  // Either flagged during flush or represented as conflicting outputs; both
  // leave the circuit with zero satisfying assignments.
  if (!r.proven_unsat) {
    expect_equisatisfiable(f, r);
  } else {
    EXPECT_EQ(solver::count_models(f), 0u);
  }
}

TEST(Transform, BufferChainCollapses) {
  // x2=x1, x3=x2, x4=x3 as BUF signatures; then unit (x4).
  const auto f = cnf::parse_dimacs_string(
      "p cnf 4 7\n-1 2 0\n1 -2 0\n-2 3 0\n2 -3 0\n-3 4 0\n3 -4 0\n4 0\n");
  const Result r = transform_cnf(f);
  expect_equisatisfiable(f, r);
  // The whole chain is functionally one wire; at most a couple of ops.
  EXPECT_LE(r.stats.circuit_ops, 2u);
}

TEST(Transform, PaperFigure1Instance) {
  // The full CNF of Fig. 1(a) (14 vars, 21 clauses).
  const auto f = cnf::parse_dimacs_string(
      "p cnf 14 21\n"
      "-1 -2 0\n1 2 0\n"          // x2 = ~x1
      "-2 3 0\n2 -3 0\n"          // x3 = x2
      "-3 4 0\n3 -4 0\n"          // x4 = x3
      "-4 -11 5 0\n-4 11 -5 0\n"  // x5 = MUX(x4; x11, x12)
      "4 -12 5 0\n4 12 -5 0\n"
      "-6 7 0\n6 -7 0\n"          // x7 = x6
      "-7 8 0\n7 -8 0\n"          // x8 = x7
      "-8 -9 0\n8 9 0\n"          // x9 = ~x8
      "-9 -13 10 0\n-9 13 -10 0\n"  // x10 = MUX(x9; x13, x14)
      "9 -14 10 0\n9 14 -10 0\n"
      "10 0\n");                  // x10 = 1
  const Result r = transform_cnf(f);
  EXPECT_FALSE(r.proven_unsat);
  // x10 pinned to 1; exactly one constrained output.
  EXPECT_EQ(r.n_primary_outputs(), 1u);
  EXPECT_EQ(r.roles[9], VarRole::kPrimaryOutput);
  // Unconstrained MUX cone (x5) exists: its output is an intermediate.
  EXPECT_EQ(r.roles[4], VarRole::kIntermediate);
  expect_equisatisfiable(f, r);
  // CNF ops vs circuit ops: the paper reports ~4x reductions on this shape.
  EXPECT_GT(r.stats.ops_reduction(), 2.0);
}

TEST(Transform, ProjectReconstructsOriginalVars) {
  const auto f = cnf::parse_dimacs_string(
      "p cnf 3 4\n-3 1 2 0\n3 -1 0\n3 -2 0\n3 0\n");
  const Result r = transform_cnf(f);
  // Walk all circuit input assignments; projections must assign all 3 vars.
  std::vector<std::uint8_t> in(r.circuit.n_inputs());
  for (std::uint64_t bits = 0; bits < (1ULL << in.size()); ++bits) {
    for (std::size_t i = 0; i < in.size(); ++i) {
      in[i] = static_cast<std::uint8_t>((bits >> i) & 1);
    }
    const auto values = r.circuit.eval(in);
    const cnf::Assignment assignment = r.project(values);
    ASSERT_EQ(assignment.size(), 3u);
    if (r.circuit.outputs_satisfied(values)) {
      EXPECT_TRUE(f.satisfied_by(assignment));
    }
  }
}

TEST(Transform, FreeVariablesBecomeInputs) {
  // Var 2 unused by any clause: still needs a projection slot.
  const auto f = cnf::parse_dimacs_string("p cnf 3 1\n1 3 0\n");
  const Result r = transform_cnf(f);
  EXPECT_EQ(r.var_signal.size(), 3u);
  for (Var v = 0; v < 3; ++v) {
    EXPECT_NE(r.var_signal[v], circuit::kNoSignal);
  }
  expect_equisatisfiable(f, r);
}

TEST(Transform, OpsReductionStatsPopulated) {
  const auto f = cnf::parse_dimacs_string(
      "p cnf 5 5\n-5 1 2 3 4 0\n5 -1 0\n5 -2 0\n5 -3 0\n5 -4 0\n");
  const Result r = transform_cnf(f);
  EXPECT_EQ(r.stats.cnf_ops, f.op_count_2input(true));
  EXPECT_EQ(r.stats.circuit_ops, r.circuit.op_count_2input(true));
  EXPECT_GE(r.stats.transform_ms, 0.0);
}

// --- randomized round-trips -----------------------------------------------------

class TransformRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(TransformRoundTrip, RandomCircuitTseitinExtractEquisat) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 5);
  // Random multi-level circuit -> Tseitin CNF -> Algorithm 1 -> compare
  // model counts with brute force (exact equisatisfiability, bijection).
  circuit::Circuit c;
  const std::size_t n_in = 2 + rng.next_below(3);
  for (std::size_t i = 0; i < n_in; ++i) c.add_input();
  const int n_gates = 3 + static_cast<int>(rng.next_below(6));
  for (int g = 0; g < n_gates; ++g) {
    const auto pick = [&] {
      return static_cast<circuit::SignalId>(rng.next_below(c.n_signals()));
    };
    const circuit::SignalId a = pick();
    circuit::SignalId b = pick();
    switch (rng.next_below(6)) {
      case 0:
        c.add_gate(GateType::kNot, {a});
        break;
      case 1:
        c.add_gate(GateType::kBuf, {a});
        break;
      case 2:
        if (a == b) b = pick();
        if (a == b) {
          c.add_gate(GateType::kNot, {a});
        } else {
          c.add_gate(GateType::kAnd, {a, b});
        }
        break;
      case 3:
        if (a == b) b = pick();
        if (a == b) {
          c.add_gate(GateType::kBuf, {a});
        } else {
          c.add_gate(GateType::kOr, {a, b});
        }
        break;
      case 4:
        if (a == b) b = pick();
        if (a == b) {
          c.add_gate(GateType::kNot, {a});
        } else {
          c.add_gate(GateType::kXor, {a, b});
        }
        break;
      default: {
        // 3-input OR for wider signatures.
        circuit::SignalId x = pick();
        if (x == a || x == b) x = pick();
        std::vector<circuit::SignalId> fanins{a, b, x};
        std::sort(fanins.begin(), fanins.end());
        fanins.erase(std::unique(fanins.begin(), fanins.end()), fanins.end());
        if (fanins.size() == 1) {
          c.add_gate(GateType::kBuf, {fanins[0]});
        } else {
          c.add_gate(GateType::kOr, fanins);
        }
        break;
      }
    }
  }
  // Constrain the last signal to a reachable value (simulate a witness).
  std::vector<std::uint8_t> witness_in(n_in);
  for (auto& bit : witness_in) bit = rng.next_bool() ? 1 : 0;
  const auto witness_values = c.eval(witness_in);
  const auto last = static_cast<circuit::SignalId>(c.n_signals() - 1);
  c.add_output(last, witness_values[last] != 0);

  const auto enc = tseitin_encode(c);
  ASSERT_LE(enc.formula.n_vars(), solver::kMaxBruteVars);
  const Result r = transform_cnf(enc.formula);
  ASSERT_FALSE(r.proven_unsat);  // witness guarantees satisfiability
  expect_equisatisfiable(enc.formula, r);
  // The extraction must never *increase* op count vs the flat CNF.
  EXPECT_LE(r.stats.circuit_ops, r.stats.cnf_ops);
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, TransformRoundTrip, ::testing::Range(0, 40));

TEST(Transform, ScrambledClauseOrderStaysEquisatisfiable) {
  // Clause order affects which definitions are discovered, never soundness.
  util::Rng rng(2024);
  const auto base = cnf::parse_dimacs_string(
      "p cnf 4 7\n-1 2 0\n1 -2 0\n-2 -3 0\n2 3 0\n-3 4 0\n3 -4 0\n4 0\n");
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<cnf::Clause> clauses = base.clauses();
    rng.shuffle(clauses);
    cnf::Formula shuffled(base.n_vars());
    for (auto& clause : clauses) shuffled.add_clause(clause);
    const Result r = transform_cnf(shuffled);
    if (!r.proven_unsat) expect_equisatisfiable(shuffled, r);
  }
}

}  // namespace
}  // namespace hts::transform
