// Tests for the uniformity-analysis module: exact counts, perfect/degenerate
// stream scoring, invalid-draw detection, and live sampler streams
// (store_all_draws) — including the expected qualitative ordering: the
// hash-based UniGen-like sampler scores flatter than a single-solution spike.

#include <gtest/gtest.h>

#include <cmath>

#include "analysis/uniformity.hpp"
#include "baselines/cmsgen_like.hpp"
#include "bdd/bdd.hpp"
#include "cnf/dimacs.hpp"
#include "core/gradient_sampler.hpp"
#include "solver/brute.hpp"

namespace hts::analysis {
namespace {

// (x1 | x2) over 3 vars: 3 * 2 = 6 models.
cnf::Formula tiny_formula() {
  return cnf::parse_dimacs_string("p cnf 3 1\n1 2 0\n");
}

TEST(Uniformity, ExactModelCount) {
  const auto f = tiny_formula();
  const UniformityReport report = analyze_uniformity(f, {});
  EXPECT_EQ(report.n_models, solver::count_models(f));
  EXPECT_EQ(report.n_draws, 0u);
}

TEST(Uniformity, PerfectlyUniformStreamScoresZero) {
  const auto f = tiny_formula();
  // One draw of every model, repeated 10 times.
  std::vector<cnf::Assignment> draws;
  for (int rep = 0; rep < 10; ++rep) {
    for (const auto& model : solver::enumerate_models(f)) draws.push_back(model);
  }
  const UniformityReport report = analyze_uniformity(f, draws);
  EXPECT_EQ(report.n_draws, 60u);
  EXPECT_EQ(report.n_distinct, report.n_models);
  EXPECT_DOUBLE_EQ(report.coverage, 1.0);
  EXPECT_NEAR(report.chi_square, 0.0, 1e-9);
  EXPECT_NEAR(report.kl_divergence, 0.0, 1e-9);
  EXPECT_DOUBLE_EQ(report.min_max_ratio, 1.0);
}

TEST(Uniformity, SpikedStreamScoresBadly) {
  const auto f = tiny_formula();
  const auto models = solver::enumerate_models(f);
  std::vector<cnf::Assignment> draws(60, models[0]);  // one model only
  const UniformityReport report = analyze_uniformity(f, draws);
  EXPECT_EQ(report.n_distinct, 1u);
  // KL of a point mass vs uniform over 6 = log 6.
  EXPECT_NEAR(report.kl_divergence, std::log(6.0), 1e-9);
  EXPECT_GT(report.chi_square, 100.0);
}

TEST(Uniformity, InvalidDrawsCountedSeparately) {
  const auto f = tiny_formula();
  std::vector<cnf::Assignment> draws{{0, 0, 0}, {1, 0, 0}};  // first is invalid
  const UniformityReport report = analyze_uniformity(f, draws);
  EXPECT_EQ(report.n_invalid, 1u);
  EXPECT_EQ(report.n_draws, 1u);
}

TEST(Uniformity, GradientSamplerStreamIsValidAndBroad) {
  const auto f = tiny_formula();
  sampler::GradientConfig config;
  config.batch = 512;
  config.policy = tensor::Policy::kSerial;
  sampler::GradientSampler sampler(config);
  sampler::RunOptions options;
  options.min_solutions = 6;
  options.budget_ms = 5000.0;
  options.store_limit = 4096;
  options.store_all_draws = true;
  const sampler::RunResult result = sampler.run(f, options);
  const UniformityReport report = analyze_uniformity(f, result.solutions);
  EXPECT_EQ(report.n_invalid, 0u);
  EXPECT_GT(report.n_draws, 6u);  // duplicates stored
  EXPECT_DOUBLE_EQ(report.coverage, 1.0);
}

TEST(Uniformity, CmsGenStreamCoversSpace) {
  const auto f = tiny_formula();
  baselines::CmsGenLike sampler;
  sampler::RunOptions options;
  options.min_solutions = 6;
  options.budget_ms = 5000.0;
  options.store_limit = 4096;
  options.store_all_draws = true;
  const sampler::RunResult result = sampler.run(f, options);
  const UniformityReport report = analyze_uniformity(f, result.solutions);
  EXPECT_EQ(report.n_invalid, 0u);
  EXPECT_DOUBLE_EQ(report.coverage, 1.0);
}

TEST(Uniformity, CapacityGuardThrows) {
  // 64 free variables: BDD fits trivially, but the count overflows the
  // exact-analysis guard.
  cnf::Formula f(64);
  EXPECT_DEATH((void)analyze_uniformity(f, {}), "too large");
}

}  // namespace
}  // namespace hts::analysis
