// Tests for the util substrate: RNG determinism/statistics, timers, thread
// pool correctness under contention, table formatting, env knobs.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <numeric>
#include <string>
#include <set>
#include <thread>
#include <vector>

#include "util/env.hpp"
#include "util/fault_injector.hpp"
#include "util/rng.hpp"
#include "util/stop_token.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace hts::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, ReseedReproduces) {
  Rng rng(7);
  const std::uint64_t first = rng.next_u64();
  (void)rng.next_u64();
  rng.reseed(7);
  EXPECT_EQ(rng.next_u64(), first);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
}

TEST(Rng, NextBelowCoversAllResidues) {
  Rng rng(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.next_below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, NextBelowRoughlyUniform) {
  Rng rng(11);
  constexpr int kBuckets = 8;
  constexpr int kDraws = 80000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kDraws; ++i) ++counts[rng.next_below(kBuckets)];
  for (const int c : counts) {
    EXPECT_NEAR(c, kDraws / kBuckets, kDraws / kBuckets * 0.1);
  }
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(13);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, GaussianMoments) {
  Rng rng(17);
  constexpr int kDraws = 200000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < kDraws; ++i) {
    const double x = rng.next_gaussian();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / kDraws, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / kDraws, 1.0, 0.03);
}

TEST(Rng, NextInRangeInclusive) {
  Rng rng(19);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto x = rng.next_in_range(-3, 3);
    EXPECT_GE(x, -3);
    EXPECT_LE(x, 3);
    saw_lo |= x == -3;
    saw_hi |= x == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, ShufflePermutes) {
  Rng rng(23);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  auto shuffled = v;
  rng.shuffle(shuffled);
  EXPECT_NE(shuffled, v);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(Rng, ForkIndependent) {
  Rng parent(29);
  Rng child = parent.fork();
  // Child stream differs from a continued parent stream.
  EXPECT_NE(child.next_u64(), parent.next_u64());
}

TEST(Timer, MeasuresElapsed) {
  Timer timer;
  volatile double sink = 0;
  for (int i = 0; i < 200000; ++i) sink = sink + 1.0;
  EXPECT_GT(timer.nanoseconds(), 0u);
  EXPECT_GE(timer.seconds(), 0.0);
}

TEST(Deadline, NoBudgetNeverExpires) {
  const Deadline deadline;
  EXPECT_FALSE(deadline.expired());
  EXPECT_GT(deadline.remaining_ms(), 1e12);
}

TEST(Deadline, TinyBudgetExpires) {
  const Deadline deadline(0.0001);
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink = sink + 1.0;
  EXPECT_TRUE(deadline.expired());
}

TEST(ThreadPool, CoversFullRangeOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 100000;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_for(kN, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (std::size_t i = 0; i < kN; ++i) ASSERT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPool, HandlesEmptyAndTinyRanges) {
  ThreadPool pool(4);
  int calls = 0;
  pool.parallel_for(0, [&](std::size_t, std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  std::atomic<int> count{0};
  pool.parallel_for(1, [&](std::size_t begin, std::size_t end) {
    count += static_cast<int>(end - begin);
  });
  EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPool, ReusableAcrossManyDispatches) {
  ThreadPool pool(3);
  std::atomic<std::size_t> total{0};
  for (int round = 0; round < 200; ++round) {
    pool.parallel_for(97, [&](std::size_t begin, std::size_t end) {
      total += end - begin;
    });
  }
  EXPECT_EQ(total.load(), 97u * 200);
}

TEST(ThreadPool, ZeroRangeIsNoopEvenOnBusyPool) {
  ThreadPool pool(2);
  std::atomic<int> calls{0};
  pool.parallel_for(1000, [&](std::size_t, std::size_t) { calls.fetch_add(1); });
  const int after_warmup = calls.load();
  pool.parallel_for(0, [&](std::size_t, std::size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), after_warmup);
}

TEST(ThreadPool, FewerItemsThanThreadsCoversExactly) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(3);
  pool.parallel_for(3, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (std::size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPool, CompletesWithoutException) {
  ThreadPool pool(4);
  EXPECT_NO_THROW({
    for (int round = 0; round < 50; ++round) {
      pool.parallel_for(round, [](std::size_t, std::size_t) {});
    }
  });
}

// Round-parallel workers all dispatch data-parallel kernels through the one
// global pool; concurrent parallel_for calls from distinct caller threads
// must each see their full range covered exactly once.
TEST(ThreadPool, ConcurrentCallersEachCoverTheirRange) {
  ThreadPool pool(4);
  constexpr std::size_t kCallers = 4;
  constexpr std::size_t kN = 5000;
  std::vector<std::vector<std::atomic<int>>> hits(kCallers);
  for (auto& h : hits) {
    h = std::vector<std::atomic<int>>(kN);
  }
  std::vector<std::thread> callers;
  callers.reserve(kCallers);
  for (std::size_t c = 0; c < kCallers; ++c) {
    callers.emplace_back([&, c] {
      for (int round = 0; round < 20; ++round) {
        pool.parallel_for(kN, [&, c](std::size_t begin, std::size_t end) {
          for (std::size_t i = begin; i < end; ++i) hits[c][i].fetch_add(1);
        });
      }
    });
  }
  for (auto& t : callers) t.join();
  for (std::size_t c = 0; c < kCallers; ++c) {
    for (std::size_t i = 0; i < kN; ++i) ASSERT_EQ(hits[c][i].load(), 20) << c << ' ' << i;
  }
}

TEST(Rng, StreamIsDeterministicPerId) {
  Rng a = Rng::stream(99, 3);
  Rng b = Rng::stream(99, 3);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, StreamsDecorrelated) {
  Rng a = Rng::stream(99, 0);
  Rng b = Rng::stream(99, 1);
  int same = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, StreamIndependentOfParentConsumption) {
  // Unlike fork(), stream() must not depend on any generator state — only on
  // (seed, id) — so worker streams are schedule-independent.
  Rng parent(5);
  (void)parent.next_u64();
  Rng a = Rng::stream(5, 2);
  Rng b = Rng::stream(5, 2);
  EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Table, AlignsAndRendersRows) {
  Table table({"name", "value"});
  table.add_row({"alpha", "1"});
  table.add_row({"b", "22222"});
  const std::string text = table.to_string();
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("22222"), std::string::npos);
  EXPECT_NE(text.find("----"), std::string::npos);
}

TEST(Table, CsvQuotesGroupedNumbers) {
  Table table({"a"});
  table.add_row({format_grouped(1234567.8)});
  const std::string csv = table.to_csv();
  EXPECT_NE(csv.find("\"1,234,567.8\""), std::string::npos);
}

TEST(TableFormat, Fixed) {
  EXPECT_EQ(format_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(format_fixed(-1.0, 1), "-1.0");
}

TEST(TableFormat, Grouped) {
  EXPECT_EQ(format_grouped(4777137.7), "4,777,137.7");
  EXPECT_EQ(format_grouped(999.0, 0), "999");
  EXPECT_EQ(format_grouped(-12345.0, 0), "-12,345");
  EXPECT_EQ(format_grouped(0.5, 1), "0.5");
}

TEST(TableFormat, Si) {
  EXPECT_EQ(format_si(2470000.0), "2.47M");
  EXPECT_EQ(format_si(1500.0), "1.50k");
  EXPECT_EQ(format_si(12.0), "12.00");
}

TEST(TableFormat, Speedup) { EXPECT_EQ(format_speedup(523.64), "523.6x"); }

TEST(Env, DoubleFallbackAndParse) {
  ::unsetenv("HTS_TEST_ENV_D");
  EXPECT_DOUBLE_EQ(env_double("HTS_TEST_ENV_D", 1.5), 1.5);
  ::setenv("HTS_TEST_ENV_D", "2.25", 1);
  EXPECT_DOUBLE_EQ(env_double("HTS_TEST_ENV_D", 1.5), 2.25);
  ::setenv("HTS_TEST_ENV_D", "garbage", 1);
  EXPECT_DOUBLE_EQ(env_double("HTS_TEST_ENV_D", 1.5), 1.5);
  ::unsetenv("HTS_TEST_ENV_D");
}

TEST(Env, IntFallbackAndParse) {
  ::unsetenv("HTS_TEST_ENV_I");
  EXPECT_EQ(env_int("HTS_TEST_ENV_I", 7), 7);
  ::setenv("HTS_TEST_ENV_I", "42", 1);
  EXPECT_EQ(env_int("HTS_TEST_ENV_I", 7), 42);
  ::unsetenv("HTS_TEST_ENV_I");
}

TEST(StopToken, DefaultTokenNeverStops) {
  StopToken token;
  EXPECT_FALSE(token.stop_possible());
  EXPECT_FALSE(token.stop_requested());
}

TEST(StopToken, ObservesItsSource) {
  StopSource source;
  StopToken token = source.token();
  EXPECT_TRUE(token.stop_possible());
  EXPECT_FALSE(token.stop_requested());
  source.request_stop();
  EXPECT_TRUE(token.stop_requested());
  EXPECT_TRUE(source.stop_requested());
}

TEST(StopToken, TokenOutlivesSource) {
  StopToken token;
  {
    StopSource source;
    token = source.token();
    source.request_stop();
  }
  EXPECT_TRUE(token.stop_requested());  // shared flag, no dangling
}

TEST(StopToken, CopiedTokensShareTheFlag) {
  StopSource source;
  const StopToken a = source.token();
  const StopToken b = a;  // NOLINT(performance-unnecessary-copy-initialization)
  source.request_stop();
  EXPECT_TRUE(a.stop_requested());
  EXPECT_TRUE(b.stop_requested());
}

TEST(ThreadPool, SubmitRunsDetachedTasks) {
  ThreadPool pool(3);
  constexpr int kTasks = 64;
  std::atomic<int> done{0};
  for (int i = 0; i < kTasks; ++i) {
    pool.submit([&done] { done.fetch_add(1); });
  }
  const Timer timer;
  while (done.load() < kTasks && timer.milliseconds() < 10000.0) {
    std::this_thread::yield();
  }
  EXPECT_EQ(done.load(), kTasks);
}

TEST(ThreadPool, SubmitInterleavesWithParallelFor) {
  // The service fleet holds pool threads in long-lived submitted loops while
  // parallel_for traffic flows through the same queue type; make sure one
  // shape cannot wedge the other.
  ThreadPool pool(4);
  std::atomic<bool> release{false};
  std::atomic<int> long_tasks_running{0};
  for (int i = 0; i < 2; ++i) {
    pool.submit([&] {
      long_tasks_running.fetch_add(1);
      while (!release.load()) std::this_thread::yield();
    });
  }
  while (long_tasks_running.load() < 2) std::this_thread::yield();
  std::atomic<std::size_t> covered{0};
  pool.parallel_for(1000, [&](std::size_t begin, std::size_t end) {
    covered.fetch_add(end - begin);
  });
  EXPECT_EQ(covered.load(), 1000u);
  release.store(true);
}

// --- fault injector ----------------------------------------------------------

TEST(FaultInjector, EmptyAndNoneSpecsAreDisarmedNoOps) {
  for (const char* spec : {"", "none"}) {
    FaultInjector injector = FaultInjector::from_spec(spec);
    EXPECT_FALSE(injector.armed());
    for (int i = 0; i < 100; ++i) {
      EXPECT_NO_THROW(injector.maybe_fault("compile"));
    }
    EXPECT_EQ(injector.hits("compile"), 0u);  // disarmed: not even counted
  }
}

TEST(FaultInjector, EveryTriggerFiresAtExactIndices) {
  FaultInjector injector = FaultInjector::from_spec("slice:every=3");
  std::vector<std::uint64_t> fired;
  for (std::uint64_t i = 0; i < 9; ++i) {
    try {
      injector.maybe_fault("slice");
    } catch (const FaultError& fault) {
      EXPECT_EQ(fault.site(), "slice");
      fired.push_back(i);
    }
  }
  EXPECT_EQ(fired, (std::vector<std::uint64_t>{2, 5, 8}));
  EXPECT_EQ(injector.hits("slice"), 9u);
  EXPECT_EQ(injector.injected("slice"), 3u);
}

TEST(FaultInjector, AtTriggerWithMaxAndKinds) {
  FaultInjector injector = FaultInjector::from_spec(
      "compile:at=0,2:kind=bad_alloc;harvest:every=1:max=2:kind=transient");
  EXPECT_THROW(injector.maybe_fault("compile"), std::bad_alloc);   // hit 0
  EXPECT_NO_THROW(injector.maybe_fault("compile"));                // hit 1
  EXPECT_THROW(injector.maybe_fault("compile"), std::bad_alloc);   // hit 2
  EXPECT_NO_THROW(injector.maybe_fault("compile"));                // hit 3
  // every=1 with max=2: first two hits only, and the transient type.
  EXPECT_THROW(injector.maybe_fault("harvest"), TransientFaultError);
  EXPECT_THROW(injector.maybe_fault("harvest"), FaultError);  // base class too
  EXPECT_NO_THROW(injector.maybe_fault("harvest"));
  // A site no rule names never throws but is not tracked either.
  EXPECT_NO_THROW(injector.maybe_fault("stream_push"));
  EXPECT_EQ(injector.hits("stream_push"), 0u);
}

TEST(FaultInjector, ProbTriggerIsDeterministicInSeedSiteAndIndex) {
  const std::string spec = "seed=99;slice:prob=0.3";
  auto run = [&](const char* site, int n) {
    FaultInjector injector = FaultInjector::from_spec(spec);
    std::vector<bool> pattern;
    for (int i = 0; i < n; ++i) {
      bool threw = false;
      try {
        injector.maybe_fault(site);
      } catch (const FaultError&) {
        threw = true;
      }
      pattern.push_back(threw);
    }
    return pattern;
  };
  const std::vector<bool> first = run("slice", 200);
  EXPECT_EQ(first, run("slice", 200));  // same spec -> identical injections
  const auto fires = static_cast<double>(
      std::count(first.begin(), first.end(), true));
  EXPECT_GT(fires / 200.0, 0.15);  // loose band around p=0.3
  EXPECT_LT(fires / 200.0, 0.45);
  // A different seed draws a different pattern.
  FaultInjector other = FaultInjector::from_spec("seed=100;slice:prob=0.3");
  std::vector<bool> other_pattern;
  for (int i = 0; i < 200; ++i) {
    bool threw = false;
    try {
      other.maybe_fault("slice");
    } catch (const FaultError&) {
      threw = true;
    }
    other_pattern.push_back(threw);
  }
  EXPECT_NE(first, other_pattern);
}

TEST(FaultInjector, MalformedSpecsThrowLoudly) {
  for (const char* spec :
       {"compile",                        // no trigger
        "compile:sometimes",              // unknown trigger
        "compile:every=0",                // zero period
        "compile:prob=1.5",               // out of range
        "compile:prob=0.5:max=3",         // max with prob
        "compile:at=1:kind=explode",      // unknown kind
        "compile:at=x",                   // malformed number
        ":at=1",                          // empty site
        "compile:at=1;compile:at=2"}) {   // duplicate site
    EXPECT_THROW((void)FaultInjector::from_spec(spec), std::invalid_argument)
        << spec;
  }
}

}  // namespace
}  // namespace hts::util
