// Tests for the structural-Verilog frontend: parsing of the supported
// subset, expression precedence, semantic checks (undriven/doubly-driven
// nets), round trips through the writer, and end-to-end sampling from HDL.

#include <gtest/gtest.h>

#include "core/circuit_sampler.hpp"
#include "util/rng.hpp"
#include "verilog/verilog.hpp"

namespace hts::verilog {
namespace {

constexpr const char* kMuxModule = R"(
// 2:1 mux, gate level
module mux2 (s, d1, d0, y);
  input s, d1, d0;
  output y;
  wire ns, t1, t0;
  and g1 (t1, s, d1);
  not g2 (ns, s);
  and g3 (t0, ns, d0);
  or  g4 (y, t1, t0);
endmodule
)";

TEST(Verilog, ParsesGateLevelMux) {
  const Module m = parse_module(kMuxModule);
  EXPECT_EQ(m.name, "mux2");
  EXPECT_EQ(m.circuit.n_inputs(), 3u);
  ASSERT_EQ(m.output_ports.size(), 1u);
  EXPECT_EQ(m.output_names[0], "y");
  // Semantics: y = s ? d1 : d0.
  for (int bits = 0; bits < 8; ++bits) {
    const std::vector<std::uint8_t> in{
        static_cast<std::uint8_t>(bits & 1), static_cast<std::uint8_t>((bits >> 1) & 1),
        static_cast<std::uint8_t>((bits >> 2) & 1)};
    const auto values = m.circuit.eval(in);
    const bool expected = in[0] != 0 ? in[1] != 0 : in[2] != 0;
    EXPECT_EQ(values[m.output_ports[0]] != 0, expected) << bits;
  }
}

TEST(Verilog, AssignExpressionPrecedence) {
  // ~ binds tightest, then &, then ^, then |.
  const Module m = parse_module(R"(
module expr (a, b, c, y);
  input a, b, c;
  output y;
  assign y = a | ~b & c ^ a;
endmodule
)");
  for (int bits = 0; bits < 8; ++bits) {
    const bool a = (bits & 1) != 0;
    const bool b = (bits & 2) != 0;
    const bool c = (bits & 4) != 0;
    const bool expected = a || (((!b) && c) != a);
    const auto values = m.circuit.eval({static_cast<std::uint8_t>(a),
                                        static_cast<std::uint8_t>(b),
                                        static_cast<std::uint8_t>(c)});
    EXPECT_EQ(values[m.output_ports[0]] != 0, expected) << bits;
  }
}

TEST(Verilog, AssignWithParenthesesAndConstants) {
  const Module m = parse_module(R"(
module k (a, y);
  input a;
  output y;
  wire t;
  assign t = (a ^ 1'b1) & ~(1'b0);
  assign y = t;
endmodule
)");
  EXPECT_EQ(m.circuit.eval({0})[m.output_ports[0]], 1);
  EXPECT_EQ(m.circuit.eval({1})[m.output_ports[0]], 0);
}

TEST(Verilog, CommentsAndInstanceNamesIgnored) {
  const Module m = parse_module(R"(
/* header
   block */
module c (a, y); // ports
  input a;
  output y;
  not the_inverter (y, a);
endmodule
)");
  EXPECT_EQ(m.circuit.eval({1})[m.output_ports[0]], 0);
}

TEST(Verilog, WideGatePrimitives) {
  const Module m = parse_module(R"(
module w (a, b, c, d, y);
  input a, b, c, d;
  output y;
  nand g (y, a, b, c, d);
endmodule
)");
  EXPECT_EQ(m.circuit.eval({1, 1, 1, 1})[m.output_ports[0]], 0);
  EXPECT_EQ(m.circuit.eval({1, 0, 1, 1})[m.output_ports[0]], 1);
}

TEST(Verilog, ErrorOnUndeclaredNet) {
  EXPECT_THROW((void)parse_module(R"(
module bad (a, y);
  input a;
  output y;
  not g (y, ghost);
endmodule
)"),
               ParseError);
}

TEST(Verilog, ErrorOnDoublyDrivenNet) {
  EXPECT_THROW((void)parse_module(R"(
module bad (a, y);
  input a;
  output y;
  not g1 (y, a);
  buf g2 (y, a);
endmodule
)"),
               ParseError);
}

TEST(Verilog, ErrorOnDrivingInput) {
  EXPECT_THROW((void)parse_module(R"(
module bad (a, y);
  input a;
  output y;
  not g1 (a, y);
endmodule
)"),
               ParseError);
}

TEST(Verilog, ErrorOnUndrivenOutput) {
  EXPECT_THROW((void)parse_module(R"(
module bad (a, y);
  input a;
  output y;
endmodule
)"),
               ParseError);
}

TEST(Verilog, ErrorOnBehaviouralConstruct) {
  EXPECT_THROW((void)parse_module(R"(
module bad (a, y);
  input a;
  output y;
  always @(posedge a) y <= a;
endmodule
)"),
               ParseError);
}

TEST(Verilog, ErrorReportsLine) {
  try {
    (void)parse_module("module m (a);\n  input a;\n  bogus x;\nendmodule\n");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 3u);
  }
}

TEST(Verilog, WriterRoundTrip) {
  util::Rng rng(4711);
  const Module original = parse_module(kMuxModule);
  circuit::Circuit annotated = original.circuit;
  annotated.add_output(original.output_ports[0], true);
  const std::string text = write_module(annotated, "mux2_rt");
  const Module reparsed = parse_module(text);
  ASSERT_EQ(reparsed.circuit.n_inputs(), original.circuit.n_inputs());
  // Equivalent behaviour on all inputs.
  for (int bits = 0; bits < 8; ++bits) {
    const std::vector<std::uint8_t> in{
        static_cast<std::uint8_t>(bits & 1), static_cast<std::uint8_t>((bits >> 1) & 1),
        static_cast<std::uint8_t>((bits >> 2) & 1)};
    EXPECT_EQ(reparsed.circuit.eval(in)[reparsed.output_ports[0]],
              original.circuit.eval(in)[original.output_ports[0]])
        << bits;
  }
  // Constraint comment present.
  EXPECT_NE(text.find("output constraints"), std::string::npos);
}

TEST(Verilog, EndToEndSamplingFromHdl) {
  // The DEMOTIC workflow: parse HDL, constrain the output, sample inputs.
  Module m = parse_module(kMuxModule);
  m.circuit.add_output(m.output_ports[0], true);
  sampler::CircuitSamplerConfig config;
  config.batch = 256;
  config.policy = tensor::Policy::kSerial;
  sampler::CircuitSampler sampler(m.circuit, config);
  sampler::RunOptions options;
  options.min_solutions = 4;
  options.budget_ms = 5000.0;
  options.store_limit = 8;
  const sampler::RunResult result = sampler.run(options);
  EXPECT_EQ(result.n_unique, 4u);
  for (const auto& inputs : result.solutions) {
    const auto values = m.circuit.eval({inputs[0], inputs[1], inputs[2]});
    EXPECT_TRUE(m.circuit.outputs_satisfied(values));
  }
}

}  // namespace
}  // namespace hts::verilog
